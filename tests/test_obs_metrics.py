"""Unit tests for the metrics registry and its exporters.

Covers counter/gauge/histogram semantics, label validation, the
``SILKMOTH_METRICS_BUCKETS`` override, Prometheus text exposition
(cumulative ``le`` buckets, ``+Inf``, ``_sum`` / ``_count``, label
escaping), sketch-backed ``summary`` families, the determinism rules
(name-sorted families, sorted contiguous label sets, monotone
quantiles) and the JSON exposition -- plus the CI lint tool
``tools/check_metrics_format.py`` run against real output.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.export import to_json, to_prometheus_text
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    reset_registry,
    resolve_buckets,
)
from repro.obs.sketch import SketchRegistry

_TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "check_metrics_format", _TOOLS / "check_metrics_format.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBuckets:
    def test_defaults_when_unset(self):
        assert resolve_buckets("") == DEFAULT_BUCKETS

    def test_env_override_sorted_and_deduped(self):
        assert resolve_buckets("1.0,0.1,1.0,10") == (0.1, 1.0, 10.0)

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            resolve_buckets("0.1,fast")


class TestRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        metric = registry.register("c_total", "help", "counter", ("kind",))
        metric.inc(kind="add")
        metric.inc(2, kind="add")
        assert metric.value(kind="add") == 3
        assert metric.value(kind="remove") == 0

    def test_counter_rejects_negative_and_wrong_labels(self):
        registry = MetricsRegistry()
        metric = registry.register("c_total", "help", "counter", ("kind",))
        with pytest.raises(ValueError):
            metric.inc(-1, kind="add")
        with pytest.raises(ValueError):
            metric.inc(other="add")

    def test_gauge_set(self):
        registry = MetricsRegistry()
        metric = registry.register("g", "help", "gauge")
        metric.set(7.5)
        metric.set(2.5)
        assert metric.value() == 2.5

    def test_histogram_observe_buckets_by_first_bound(self):
        registry = MetricsRegistry()
        metric = registry.register(
            "h", "help", "histogram", buckets=(0.1, 1.0)
        )
        metric.observe(0.05)
        metric.observe(0.5)
        metric.observe(5.0)  # above every bound: only count/+Inf
        ((_, child),) = metric.series()
        assert child.bucket_counts == [1, 1]
        assert child.count == 3
        assert child.sum == pytest.approx(5.55)

    def test_register_is_idempotent_but_kind_clash_raises(self):
        registry = MetricsRegistry()
        first = registry.register("m", "help", "counter")
        assert registry.register("m", "other", "counter") is first
        with pytest.raises(ValueError):
            registry.register("m", "help", "gauge")

    def test_reset_swaps_the_process_registry(self):
        before = get_registry()
        after = reset_registry()
        try:
            assert after is not before
            assert get_registry() is after
        finally:
            pass  # the fresh registry is fine to leave in place


class TestPrometheusText:
    def test_counter_and_label_escaping(self):
        registry = MetricsRegistry()
        metric = registry.register("c_total", "help text", "counter", ("k",))
        metric.inc(k='with "quote"\nand\\slash')
        text = to_prometheus_text(registry)
        assert "# HELP c_total help text" in text
        assert "# TYPE c_total counter" in text
        assert 'k="with \\"quote\\"\\nand\\\\slash"' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        metric = registry.register(
            "h_seconds", "help", "histogram", buckets=(0.1, 1.0)
        )
        metric.observe(0.05)
        metric.observe(0.05)
        metric.observe(0.5)
        metric.observe(9.0)
        text = to_prometheus_text(registry)
        assert 'h_seconds_bucket{le="0.1"} 2' in text
        assert 'h_seconds_bucket{le="1"} 3' in text
        assert 'h_seconds_bucket{le="+Inf"} 4' in text
        assert "h_seconds_count 4" in text
        assert "h_seconds_sum" in text

    def test_empty_family_emits_headers_only(self):
        registry = MetricsRegistry()
        registry.register("quiet_total", "help", "counter")
        text = to_prometheus_text(registry)
        assert "# TYPE quiet_total counter" in text
        assert "\nquiet_total " not in text

    def test_lint_tool_accepts_real_exposition(self):
        lint = _load_lint()
        registry = MetricsRegistry()
        counter = registry.register("c_total", "help", "counter", ("kind",))
        counter.inc(kind="add")
        histogram = registry.register(
            "h_seconds", "help", "histogram", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(3.0)
        assert lint.lint(to_prometheus_text(registry)) == []

    def test_lint_tool_rejects_broken_expositions(self):
        lint = _load_lint()
        # Sample without HELP/TYPE.
        assert lint.lint("orphan_total 1\n")
        # Non-cumulative histogram buckets.
        broken = (
            "# HELP h help\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        assert any("cumulative" in msg for _, msg in lint.lint(broken))
        # Missing +Inf.
        no_inf = (
            "# HELP h help\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        assert any("+Inf" in msg for _, msg in lint.lint(no_inf))
        # _count disagreeing with the +Inf bucket.
        drift = (
            "# HELP h help\n"
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\n"
            "h_count 4\n"
        )
        assert any("_count" in msg or "!=" in msg for _, msg in lint.lint(drift))


class TestSummaryExposition:
    def _sketches(self):
        sketches = SketchRegistry()
        family = sketches.register(
            "q_latency", "query latency", ("stage",)
        )
        for stage in ("check", "verify"):
            for value in (0.01, 0.02, 0.5):
                family.record(value, stage=stage)
        return sketches

    def test_sketch_family_renders_as_summary(self):
        text = to_prometheus_text(MetricsRegistry(), self._sketches())
        assert "# TYPE q_latency summary" in text
        assert 'q_latency{stage="check",quantile="0.5"}' in text
        assert 'q_latency_sum{stage="check"}' in text
        assert 'q_latency_count{stage="check"} 3' in text

    def test_summary_exposition_passes_lint(self):
        lint = _load_lint()
        registry = MetricsRegistry()
        registry.register("c_total", "help", "counter").inc()
        text = to_prometheus_text(registry, self._sketches())
        assert lint.lint(text) == []

    def test_families_merge_name_sorted(self):
        """Metric and sketch families interleave in one sorted stream."""
        registry = MetricsRegistry()
        registry.register("zz_total", "help", "counter").inc()
        registry.register("aa_total", "help", "counter").inc()
        text = to_prometheus_text(registry, self._sketches())
        order = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert order == sorted(order)
        assert "q_latency" in order

    def test_json_summary_entries(self):
        payload = json.loads(to_json(MetricsRegistry(), self._sketches()))
        by_name = {m["name"]: m for m in payload["metrics"]}
        entry = by_name["q_latency"]
        assert entry["kind"] == "summary"
        series = entry["series"][0]
        assert series["labels"] == ["check"]
        assert series["count"] == 3
        assert series["quantiles"]["0.5"] == pytest.approx(0.02, rel=0.05)


class TestDeterminismLint:
    def test_unsorted_family_order_flagged(self):
        lint = _load_lint()
        scrambled = (
            "# HELP z_total help\n"
            "# TYPE z_total counter\n"
            "z_total 1\n"
            "# HELP a_total help\n"
            "# TYPE a_total counter\n"
            "a_total 1\n"
        )
        assert any(
            "sorted name order" in msg for _, msg in lint.lint(scrambled)
        )

    def test_interleaved_series_flagged(self):
        lint = _load_lint()
        interleaved = (
            "# HELP c_total help\n"
            "# TYPE c_total counter\n"
            'c_total{kind="a"} 1\n'
            'c_total{kind="b"} 1\n'
            'c_total{kind="a"} 2\n'
        )
        assert any(
            "interleaved" in msg for _, msg in lint.lint(interleaved)
        )

    def test_unsorted_label_sets_flagged(self):
        lint = _load_lint()
        unsorted = (
            "# HELP c_total help\n"
            "# TYPE c_total counter\n"
            'c_total{kind="b"} 1\n'
            'c_total{kind="a"} 1\n'
        )
        assert any(
            "not in sorted order" in msg for _, msg in lint.lint(unsorted)
        )

    def test_quantile_order_and_monotonicity_flagged(self):
        lint = _load_lint()
        shuffled = (
            "# HELP s help\n"
            "# TYPE s summary\n"
            's{quantile="0.9"} 1.0\n'
            's{quantile="0.5"} 2.0\n'
            "s_sum 3.0\n"
            "s_count 2\n"
        )
        problems = [msg for _, msg in lint.lint(shuffled)]
        assert any("quantile labels not sorted" in msg for msg in problems)
        assert any("not monotone" in msg for msg in problems)

    def test_real_full_exposition_is_deterministic(self):
        """Two expositions of the same state are byte-identical."""
        registry = MetricsRegistry()
        registry.register("c_total", "help", "counter", ("k",)).inc(k="b")
        registry.get("c_total").inc(k="a")
        sketches = SketchRegistry()
        sketches.register("s_latency", "help", ("stage",)).record(
            0.1, stage="check"
        )
        first = to_prometheus_text(registry, sketches)
        second = to_prometheus_text(registry, sketches)
        assert first == second
        assert _load_lint().lint(first) == []


class TestJsonExport:
    def test_document_shape(self):
        registry = MetricsRegistry()
        counter = registry.register("c_total", "help", "counter", ("kind",))
        counter.inc(kind="add")
        histogram = registry.register(
            "h_seconds", "help", "histogram", buckets=(0.1,)
        )
        histogram.observe(0.05)
        payload = json.loads(to_json(registry))
        assert payload["schema"] == "silkmoth-metrics/1"
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["c_total"]["series"][0]["value"] == 1
        series = by_name["h_seconds"]["series"][0]
        assert series["bucket_counts"] == [1]
        assert series["count"] == 1
