"""End-to-end telemetry: spans and metrics from real engine traffic.

The headline assertion lives here: a socket-transport cluster query
produces **one** coherent trace tree -- shard spans generated in
worker processes parented under the coordinator's query span -- plus
the metrics-side checks that the pipeline hot paths really feed the
registry, and that the CLI exposes both.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.cluster import SilkMothCluster
from repro.core.config import SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.obs import get_registry, reset_registry, to_prometheus_text
from repro.obs.trace import get_tracer, set_trace_enabled

DATA = [
    ["apple pie", "apple tart"],
    ["apple pie", "apple strudel"],
    ["banana split", "banana bread"],
    ["cherry cola", "cherry pie"],
]


@pytest.fixture(autouse=True)
def clean_telemetry():
    get_tracer().drain()
    yield
    set_trace_enabled(None)
    get_tracer().drain()


def _children(spans, parent):
    return [s for s in spans if s["parent_id"] == parent["span_id"]]


class TestSingleNodeTrace:
    def test_service_query_span_tree(self):
        set_trace_enabled(True)
        collection = SetCollection.from_strings(DATA)
        engine = SilkMoth(collection, SilkMothConfig(delta=0.3))
        engine.search(collection[0], skip_set=0)
        spans = get_tracer().drain()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (pass_span,) = by_name["pipeline.pass"]
        stage_names = {
            s["name"] for s in _children(spans, pass_span)
        }
        assert stage_names == {
            "stage.signature",
            "stage.select",
            "stage.check",
            "stage.nn",
            "stage.verify",
        }
        assert pass_span["attrs"]["backend"]
        assert "matches" in pass_span["attrs"]


class TestClusterTrace:
    @pytest.mark.parametrize("transport", ["inline", "socket"])
    def test_one_trace_tree_across_processes(self, transport):
        set_trace_enabled(True)
        with SilkMothCluster.from_sets(
            DATA, SilkMothConfig(delta=0.3), shards=2, transport=transport
        ) as cluster:
            cluster.search(["apple pie", "apple tart"])
        spans = get_tracer().drain()
        set_trace_enabled(None)

        queries = [s for s in spans if s["name"] == "service.query"]
        assert len(queries) == 1
        query = queries[0]
        # Every span -- including the ones produced inside worker
        # processes -- belongs to the coordinator's single trace.
        cluster_spans = [
            s for s in spans if s["trace_id"] == query["trace_id"]
        ]
        shard_spans = [
            s for s in cluster_spans if s["name"] == "shard.search"
        ]
        assert len(shard_spans) >= 1
        (cluster_query,) = [
            s for s in cluster_spans if s["name"] == "cluster.query"
        ]
        for shard_span in shard_spans:
            assert shard_span["parent_id"] == cluster_query["span_id"]
        # Each shard pass carries the full pipeline underneath it.
        pass_spans = [
            s for s in cluster_spans if s["name"] == "pipeline.pass"
        ]
        assert {s["parent_id"] for s in pass_spans} <= {
            s["span_id"] for s in shard_spans
        }
        if transport == "socket":
            # Spans really crossed process boundaries.
            pids = {s["pid"] for s in cluster_spans}
            assert len(pids) >= 2
            coordinator_pid = query["pid"]
            assert any(s["pid"] != coordinator_pid for s in shard_spans)

    def test_tracing_off_ships_no_spans(self):
        set_trace_enabled(False)
        with SilkMothCluster.from_sets(
            DATA, SilkMothConfig(delta=0.3), shards=2, transport="inline"
        ) as cluster:
            cluster.search(["apple pie", "apple tart"])
        assert get_tracer().drain() == []


class TestMetricsFromTraffic:
    def test_engine_traffic_feeds_the_funnel_and_pass_families(self):
        registry = reset_registry()
        collection = SetCollection.from_strings(DATA)
        engine = SilkMoth(collection, SilkMothConfig(delta=0.3))
        engine.discover()
        assert registry is get_registry()
        passes = registry.get("silkmoth_passes_total")
        total_passes = sum(
            child.value for _, child in passes.series()
        )
        assert total_passes == len(DATA)
        funnel = registry.get("silkmoth_candidates_total")
        assert funnel.value(stage="initial") >= funnel.value(stage="verified")
        hist = registry.get("silkmoth_pass_seconds")
        assert sum(child.count for _, child in hist.series()) == len(DATA)

    def test_cluster_traffic_feeds_routing_families(self):
        registry = reset_registry()
        with SilkMothCluster.from_sets(
            DATA, SilkMothConfig(delta=0.3), shards=2, transport="inline"
        ) as cluster:
            cluster.search(["apple pie", "apple tart"])
        routed = registry.get("silkmoth_shards_routed_total").value()
        skipped = registry.get("silkmoth_shards_skipped_total").value()
        assert routed + skipped == 2
        assert registry.get("silkmoth_queries_total").value(result="miss") == 1


class TestCliTelemetry:
    def test_stats_metrics_prom_lints_clean(self, tmp_path, capsys):
        reset_registry()
        data = tmp_path / "data.txt"
        data.write_text("apple pie\napple tart\nbanana split\n")
        assert main(
            ["stats", str(data), "--metrics", "prom", "--delta", "0.2"]
        ) == 0
        text = capsys.readouterr().out
        assert "# TYPE silkmoth_passes_total counter" in text
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "check_metrics_format",
            Path(__file__).resolve().parent.parent
            / "tools"
            / "check_metrics_format.py",
        )
        lint = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(lint)
        assert lint.lint(text) == []

    def test_stats_metrics_json_parses(self, tmp_path, capsys):
        reset_registry()
        data = tmp_path / "data.txt"
        data.write_text("apple pie\napple tart\n")
        assert main(
            ["stats", str(data), "--metrics", "json", "--delta", "0.2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "silkmoth-metrics/1"

    def test_trace_export_and_flame_subcommand(
        self, tmp_path, capsys, monkeypatch
    ):
        data = tmp_path / "data.txt"
        data.write_text("apple pie\napple tart\n")
        trace_path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("SILKMOTH_TRACE", "1")
        monkeypatch.setenv("SILKMOTH_TRACE_EXPORT", str(trace_path))
        set_trace_enabled(None)  # re-read the env
        assert main(
            ["discover", str(data), "--delta", "0.2", "--quiet"]
        ) == 0
        set_trace_enabled(None)
        assert trace_path.exists()
        for line in trace_path.read_text().splitlines():
            json.loads(line)
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        flame = capsys.readouterr().out
        assert "pipeline.pass" in flame
        assert "stage.verify" in flame
