"""Cluster persistence: v3 shard snapshots and the manifest round-trip.

A saved cluster must reload into an observably identical one -- same
global ids, same answers, same generation -- including after mutations
and rebalancing have scattered placement away from round-robin; and
every malformed input must fail loudly, never load wrong.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SilkMothCluster
from repro.core.config import SilkMothConfig
from repro.io.persistence import (
    load_cluster_manifest,
    load_collection,
    load_shard_snapshot,
    save_cluster_manifest,
    save_shard_snapshot,
)
from repro.service import SilkMothService
from repro.sim.functions import SimilarityKind
from strategies import collections, token_configs, token_sets

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def test_shard_snapshot_round_trip(tmp_path):
    """A v3 shard file restores sets, tombstones, and shard metadata."""
    path = tmp_path / "shard.json"
    save_shard_snapshot(
        path,
        kind=SimilarityKind.JACCARD,
        q=1,
        sets=[["ash bay", "elm"], ["oak"], ["ivy"]],
        deleted=[1],
        shard_meta={
            "shard_index": 2,
            "local_to_global": [0, 3, 6],
            "generation": 5,
        },
    )
    collection, shard_meta = load_shard_snapshot(
        path, expected_kind=SimilarityKind.JACCARD, expected_q=1
    )
    assert [e.text for e in collection[0].elements] == ["ash bay", "elm"]
    assert sorted(collection.deleted_ids) == [1]
    assert collection.live_count == 2
    assert shard_meta["shard_index"] == 2
    assert shard_meta["local_to_global"] == [0, 3, 6]
    # A v3 file also loads as a plain collection (shard meta ignored).
    plain = load_collection(path)
    assert plain.live_count == 2


def test_shard_snapshot_validates_tokenizer(tmp_path):
    """Kind/q mismatches raise instead of serving wrong similarities."""
    path = tmp_path / "shard.json"
    save_shard_snapshot(
        path,
        kind=SimilarityKind.EDS,
        q=2,
        sets=[["abc"]],
        deleted=[],
        shard_meta={},
    )
    with pytest.raises(ValueError):
        load_shard_snapshot(path, expected_kind=SimilarityKind.JACCARD)
    with pytest.raises(ValueError):
        load_shard_snapshot(path, expected_kind=SimilarityKind.EDS, expected_q=3)


def test_manifest_round_trip_and_validation(tmp_path):
    """Manifests persist shard names + coordinator metadata; junk fails."""
    path = tmp_path / "cluster.json"
    save_cluster_manifest(
        path,
        kind=SimilarityKind.JACCARD,
        q=1,
        shard_files=["cluster-shard0.json"],
        metadata={"generation": 3},
    )
    payload = load_cluster_manifest(path)
    assert payload["shards"] == ["cluster-shard0.json"]
    assert payload["cluster"]["generation"] == 3

    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(ValueError):
        load_cluster_manifest(bad)
    bad.write_text(json.dumps({"format": "something-else", "version": 1}))
    with pytest.raises(ValueError):
        load_cluster_manifest(bad)
    bad.write_text(
        json.dumps({"format": "silkmoth-cluster", "version": 99, "shards": []})
    )
    with pytest.raises(ValueError):
        load_cluster_manifest(bad)
    bad.write_text(
        json.dumps(
            {"format": "silkmoth-cluster", "version": 1, "shards": [1, 2]}
        )
    )
    with pytest.raises(ValueError):
        load_cluster_manifest(bad)


@given(
    sets=collections(min_sets=1, max_sets=6),
    reference=token_sets(),
    config=token_configs(),
    shards=st.integers(min_value=1, max_value=3),
)
@_SETTINGS
def test_cluster_save_load_identity(tmp_path_factory, sets, reference, config, shards):
    """Save + load preserves ids, answers and the write generation."""
    tmp_path = tmp_path_factory.mktemp("cluster")
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(sets, config, shards=shards) as cluster:
        expected = cluster.search(reference)
        live = cluster.live_set_ids()
        generation = cluster.generation
        cluster.save(manifest)
    loaded = SilkMothCluster.load(manifest, config)
    try:
        assert loaded.live_set_ids() == live
        assert loaded.generation == generation
        assert loaded.search(reference) == expected
    finally:
        loaded.close()


def test_cluster_snapshot_after_mutation_and_rebalance(tmp_path):
    """Scattered placement (moves, tombstones) survives the round trip."""
    config = SilkMothConfig(delta=0.3)
    sets = [[f"w{i} shared"] for i in range(9)]
    service = SilkMothService(config)
    for elements in sets:
        service.add_set(elements)
    with SilkMothCluster.from_sets(sets, config, shards=3) as cluster:
        for gid in (0, 3, 6):  # empty out shard 0, then rebalance
            cluster.remove_set(gid)
            service.remove_set(gid)
        new_gid = cluster.update_set(1, ["w1 changed shared"])
        assert service.update_set(1, ["w1 changed shared"]).set_id == new_gid
        cluster.compact()
        manifest = tmp_path / "cluster.json"
        cluster.save(manifest)
        saved_stats = cluster.stats.to_dict()
    loaded = SilkMothCluster.load(manifest, config)
    try:
        assert loaded.live_set_ids() == service.live_set_ids()
        for reference in (["w1 changed"], ["shared"], ["w4 shared"]):
            assert loaded.search(reference) == service.search(reference)
        # Same config fingerprint => lifetime stats restored.
        assert loaded.stats.rebalance_moves == saved_stats["rebalance_moves"]
        # Mutations continue seamlessly under the global numbering.
        assert loaded.add_set(["w9 shared"]) == service.add_set(
            ["w9 shared"]
        ).set_id
        assert loaded.search(["w9 shared"]) == service.search(["w9 shared"])
    finally:
        loaded.close()


def test_cluster_load_validates_config(tmp_path):
    """A manifest refuses to serve under mismatched tokenizer settings."""
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(
        [["ash"]], SilkMothConfig(), shards=1
    ) as cluster:
        cluster.save(manifest)
    with pytest.raises(ValueError):
        SilkMothCluster.load(
            manifest, SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.8)
        )


def test_cluster_load_rejects_inconsistent_shard_map(tmp_path):
    """A shard file whose id map disagrees with its sets fails loudly."""
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(
        [["ash"], ["oak"]], SilkMothConfig(), shards=1
    ) as cluster:
        cluster.save(manifest)
    shard_file = tmp_path / "cluster-shard0.json"
    payload = json.loads(shard_file.read_text())
    payload["shard"]["local_to_global"] = [0]  # maps 1 of 2 sets
    shard_file.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        SilkMothCluster.load(manifest, SilkMothConfig())
    # A placement entry pointing at a slot that holds a different
    # global id must fail too.
    payload["shard"]["local_to_global"] = [1, 0]  # swapped vs placement
    shard_file.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        SilkMothCluster.load(manifest, SilkMothConfig())


def test_snapshot_counts_in_stats(tmp_path):
    """save() increments snapshots_saved like the single-node service."""
    with SilkMothCluster.from_sets(
        [["ash"]], SilkMothConfig(), shards=2
    ) as cluster:
        cluster.save(tmp_path / "cluster.json")
        assert cluster.stats.snapshots_saved == 1
