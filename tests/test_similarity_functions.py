"""Unit tests for jaccard/eds/neds and the alpha-thresholded wrapper."""

import pytest

from repro.sim.functions import (
    SimilarityFunction,
    SimilarityKind,
    eds,
    jaccard,
    neds,
)


class TestJaccard:
    def test_paper_example(self):
        # Section 2.1: Jac({50,Vassar,St,MA},{50,Vassar,Street,MA}) = 3/5.
        x = {"50", "Vassar", "St", "MA"}
        y = {"50", "Vassar", "Street", "MA"}
        assert jaccard(x, y) == pytest.approx(3 / 5)

    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard(set(), {"a"}) == 0.0
        assert jaccard({"a"}, set()) == 0.0

    def test_accepts_lists(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)

    def test_symmetry(self):
        x, y = {"a", "b", "c"}, {"b", "c", "d", "e"}
        assert jaccard(x, y) == jaccard(y, x)

    def test_subset(self):
        assert jaccard({"a", "b"}, {"a", "b", "c", "d"}) == pytest.approx(0.5)


class TestEds:
    def test_paper_example(self):
        # Section 2.1: Eds("50 Vassar St MA", "50 Vassar Street MA") = 15/19.
        assert eds("50 Vassar St MA", "50 Vassar Street MA") == pytest.approx(15 / 19)

    def test_identical(self):
        assert eds("abc", "abc") == 1.0

    def test_empty_vs_nonempty(self):
        # LD = n, so eds = 1 - 2n/(0 + n + n) = 0.
        assert eds("", "abc") == 0.0

    def test_range(self):
        assert 0.0 <= eds("kitten", "sitting") <= 1.0

    def test_symmetry(self):
        assert eds("sunday", "saturday") == eds("saturday", "sunday")

    def test_triangle_inequality_of_dual(self):
        # 1 - eds is a metric; spot-check the triangle inequality.
        strings = ["abc", "abd", "xbd", "xyz", "", "a"]
        for a in strings:
            for b in strings:
                for c in strings:
                    d_ab = 1 - eds(a, b)
                    d_bc = 1 - eds(b, c)
                    d_ac = 1 - eds(a, c)
                    assert d_ac <= d_ab + d_bc + 1e-12


class TestNeds:
    def test_identical(self):
        assert neds("abc", "abc") == 1.0

    def test_simple(self):
        # LD("cat","cut") = 1, max length 3.
        assert neds("cat", "cut") == pytest.approx(2 / 3)

    def test_bounded_by_eds(self):
        # Section 7.1 derives NEds(r, s) <= Eds(r, s).
        pairs = [
            ("kitten", "sitting"),
            ("abc", "xyz"),
            ("50 Vassar St MA", "50 Vassar Street MA"),
            ("a", "abcdef"),
        ]
        for x, y in pairs:
            assert neds(x, y) <= eds(x, y) + 1e-12

    def test_both_empty(self):
        assert neds("", "") == 1.0


class TestSimilarityFunction:
    def test_alpha_threshold_zeroes_low_scores(self):
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.5)
        assert phi.tokens({"a", "b", "c"}, {"a"}) == 0.0  # 1/3 < 0.5

    def test_alpha_threshold_keeps_high_scores(self):
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.5)
        assert phi.tokens({"a", "b"}, {"a", "b", "c"}) == pytest.approx(2 / 3)

    def test_alpha_boundary_kept(self):
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.5)
        assert phi.tokens({"a"}, {"a", "b"}) == pytest.approx(0.5)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            SimilarityFunction(SimilarityKind.JACCARD, alpha=1.5)
        with pytest.raises(ValueError):
            SimilarityFunction(SimilarityKind.JACCARD, alpha=-0.1)

    def test_strings_jaccard_splits_words(self):
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        assert phi("a b c", "a b d") == pytest.approx(0.5)

    def test_strings_eds(self):
        phi = SimilarityFunction(SimilarityKind.EDS)
        assert phi("abc", "abc") == 1.0

    def test_strings_neds(self):
        phi = SimilarityFunction(SimilarityKind.NEDS)
        assert phi("cat", "cut") == pytest.approx(2 / 3)

    def test_edit_at_least_matches_exact_above_floor(self):
        phi = SimilarityFunction(SimilarityKind.EDS, alpha=0.0)
        pairs = [("kitten", "sitting"), ("abcd", "abce"), ("same", "same")]
        for x, y in pairs:
            exact = phi.threshold(eds(x, y))
            got = phi.edit_at_least(x, y, floor=0.3)
            if exact >= 0.3:
                assert got == pytest.approx(exact)
            else:
                assert got == 0.0

    def test_edit_at_least_respects_alpha(self):
        phi = SimilarityFunction(SimilarityKind.EDS, alpha=0.9)
        assert phi.edit_at_least("kitten", "sitting", floor=0.0) == 0.0

    def test_edit_at_least_neds(self):
        phi = SimilarityFunction(SimilarityKind.NEDS, alpha=0.0)
        assert phi.edit_at_least("cat", "cut", floor=0.5) == pytest.approx(2 / 3)

    def test_edit_at_least_rejects_jaccard(self):
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        with pytest.raises(ValueError):
            phi.edit_at_least("a", "b", floor=0.5)

    def test_is_edit_based(self):
        assert not SimilarityKind.JACCARD.is_edit_based
        assert SimilarityKind.EDS.is_edit_based
        assert SimilarityKind.NEDS.is_edit_based
