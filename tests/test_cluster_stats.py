"""Merge accounting for ``ClusterPassStats`` / ``ClusterStats``.

Pins the bookkeeping invariants under mixed routing outcomes and
mutation programs: merged funnel counters are exactly the per-shard
sums, skip/broadcast totals follow the routing verdicts, and the
live-cluster lifetime counters agree with a query-by-query replay.
"""

from __future__ import annotations

import pytest

from repro.cluster import SilkMothCluster
from repro.cluster.stats import ClusterPassStats, ClusterStats, merge_pass_stats
from repro.core.config import SilkMothConfig
from repro.core.stats import PassStats


def _pass(backend="python", scheme="dichotomy", **counters) -> PassStats:
    stats = PassStats(backend=backend, scheme=scheme)
    for name, value in counters.items():
        setattr(stats, name, value)
    return stats


class TestMergePassStats:
    def test_counters_sum_across_shards(self):
        merged = merge_pass_stats(
            [
                _pass(
                    initial_candidates=5,
                    after_check=4,
                    after_nn=3,
                    verified=2,
                    matches=1,
                    sim_cache_hits=7,
                    sim_cache_misses=2,
                ),
                _pass(
                    initial_candidates=10,
                    after_check=8,
                    after_nn=6,
                    verified=4,
                    matches=2,
                    sim_cache_hits=3,
                    sim_cache_misses=1,
                ),
            ]
        )
        assert merged.initial_candidates == 15
        assert merged.after_check == 12
        assert merged.after_nn == 9
        assert merged.verified == 6
        assert merged.matches == 3
        assert merged.sim_cache_hits == 10
        assert merged.sim_cache_misses == 3
        assert merged.backend == "python"
        assert merged.scheme == "dichotomy"

    def test_disagreeing_labels_read_mixed(self):
        merged = merge_pass_stats(
            [_pass(backend="python"), _pass(backend="numpy")]
        )
        assert merged.backend == "mixed"

    def test_stage_seconds_add(self):
        a = _pass()
        a.stage_seconds = {"verify": 0.25, "check": 0.5}
        b = _pass()
        b.stage_seconds = {"verify": 0.75}
        merged = merge_pass_stats([a, b])
        assert merged.stage_seconds["verify"] == pytest.approx(1.0)
        assert merged.stage_seconds["check"] == pytest.approx(0.5)

    def test_empty_merge_is_blank(self):
        merged = merge_pass_stats([])
        assert merged.backend == "" and merged.scheme == ""
        assert merged.initial_candidates == 0


class TestClusterPassStats:
    def test_from_shards_routing_arithmetic(self):
        pass_stats = ClusterPassStats.from_shards(
            4, [(1, _pass(matches=2)), (3, _pass(matches=1))]
        )
        assert pass_stats.shards_total == 4
        assert pass_stats.shards_routed == 2
        assert pass_stats.shards_skipped == 2
        assert pass_stats.merged.matches == 3
        assert [index for index, _ in pass_stats.per_shard] == [1, 3]


class TestClusterStatsAccounting:
    def test_mixed_program_totals(self):
        stats = ClusterStats()
        program = [
            ClusterPassStats.from_shards(4, [(0, _pass()), (1, _pass())]),
            ClusterPassStats.from_shards(
                4, [(k, _pass()) for k in range(4)]
            ),  # broadcast
            ClusterPassStats.from_shards(4, [(2, _pass())]),
            ClusterPassStats.from_shards(
                4, [(k, _pass()) for k in range(4)]
            ),  # broadcast
        ]
        for pass_stats in program:
            stats.record_routing(pass_stats)
        assert stats.shards_routed_total == 2 + 4 + 1 + 4
        assert stats.shards_skipped_total == 2 + 0 + 3 + 0
        assert stats.broadcasts == 2
        considered = stats.shards_routed_total + stats.shards_skipped_total
        assert stats.shard_skip_rate == pytest.approx(5 / considered)

    def test_zero_shard_pass_is_not_a_broadcast(self):
        stats = ClusterStats()
        stats.record_routing(ClusterPassStats.from_shards(0, []))
        assert stats.broadcasts == 0
        assert stats.shard_skip_rate == 0.0

    def test_round_trip_preserves_routing_counters(self):
        stats = ClusterStats()
        stats.record_routing(
            ClusterPassStats.from_shards(3, [(0, _pass()), (2, _pass())])
        )
        stats.rebalance_moves = 5
        payload = stats.to_dict()
        restored = ClusterStats.from_dict(payload)
        assert restored.shards_routed_total == 2
        assert restored.shards_skipped_total == 1
        assert restored.broadcasts == 0
        assert restored.rebalance_moves == 5


class TestLiveClusterReplay:
    """A real cluster under a mixed skip/broadcast mutation program."""

    DATA = [
        ["apple pie", "apple tart"],
        ["apple pie", "apple strudel"],
        ["banana split", "banana bread"],
        ["banana split", "banana royale"],
        ["cherry cola", "cherry pie"],
        ["durian shake", "durian toast"],
    ]

    def test_lifetime_counters_equal_query_by_query_replay(self):
        with SilkMothCluster.from_sets(
            self.DATA, SilkMothConfig(delta=0.3), shards=3, transport="inline"
        ) as cluster:
            queries = [
                ["apple pie", "apple tart"],     # narrow: should skip shards
                ["durian shake", "durian toast"],
                ["banana split", "banana bread"],
            ]
            expected_routed = expected_skipped = expected_broadcasts = 0
            funnel_checks = 0
            for i, query in enumerate(queries):
                cluster.search(query)
                last = cluster.last_pass
                assert last.shards_routed + last.shards_skipped == 3
                # Merged funnel == per-shard sums, every query.
                for counter in (
                    "initial_candidates",
                    "after_check",
                    "after_nn",
                    "verified",
                    "matches",
                ):
                    assert getattr(last.merged, counter) == sum(
                        getattr(stats, counter) for _, stats in last.per_shard
                    )
                funnel_checks += 1
                expected_routed += last.shards_routed
                expected_skipped += last.shards_skipped
                if last.shards_routed == last.shards_total:
                    expected_broadcasts += 1
                # Interleave mutations so later routings run against a
                # changed summary/placement state.
                if i == 0:
                    cluster.add_set(["elderberry jam", "elderberry gin"])
                if i == 1:
                    cluster.remove_set(4)
            assert funnel_checks == len(queries)
            stats = cluster.stats
            assert stats.shards_routed_total == expected_routed
            assert stats.shards_skipped_total == expected_skipped
            assert stats.broadcasts == expected_broadcasts
            considered = expected_routed + expected_skipped
            assert stats.shard_skip_rate == pytest.approx(
                expected_skipped / considered
            )
            # The summary intersection really skipped something in this
            # program (the narrow fruit queries), so the rate is
            # meaningful rather than vacuously zero.
            assert stats.shards_skipped_total > 0
