"""Unit tests for candidate selection, the check filter, and the NN filter."""

import pytest

from repro.core.records import SetCollection
from repro.filters.check import CandidateInfo, select_and_check
from repro.filters.nearest_neighbor import nearest_neighbor_filter, nn_search
from repro.index.inverted import InvertedIndex
from repro.sim.functions import SimilarityFunction, SimilarityKind
from repro.signatures import get_scheme


def _table2():
    t = {i: chr(96 + i) for i in range(1, 13)}

    def el(*ids):
        return " ".join(t[i] for i in ids)

    R = [el(1, 2, 3, 6, 8), el(4, 5, 7, 9, 10), el(1, 4, 5, 11, 12)]
    S = [
        [el(2, 3, 5, 6, 7), el(1, 2, 4, 5, 6), el(1, 2, 3, 4, 7)],
        [el(1, 6, 8), el(1, 4, 5, 6, 7), el(1, 2, 3, 7, 9)],
        [el(1, 2, 3, 4, 6, 8), el(2, 3, 11, 12), el(1, 2, 3, 5)],
        [el(1, 2, 3, 8), el(4, 5, 7, 9, 10), el(1, 4, 5, 6, 9)],
    ]
    collection = SetCollection.from_strings(S)
    reference = collection.sibling().add_set(R)
    return reference, collection


@pytest.fixture
def table2():
    return _table2()


@pytest.fixture
def table2_signature(table2):
    reference, collection = table2
    phi = SimilarityFunction(SimilarityKind.JACCARD)
    index = InvertedIndex(collection)
    signature = get_scheme("weighted").generate(reference, 2.1, phi, index)
    return reference, collection, index, phi, signature


class TestSelectAndCheck:
    def test_gathers_candidates_sharing_signature_tokens(self, table2_signature):
        reference, collection, index, phi, signature = table2_signature
        infos = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=False
        )
        ids = {info.set_id for info in infos}
        # Every set sharing a signature token must appear.
        for record in collection:
            shares = any(
                element.index_tokens & signature.tokens
                for element in record.elements
            )
            assert (record.set_id in ids) == shares

    def test_check_filter_prunes(self, table2_signature):
        reference, collection, index, phi, signature = table2_signature
        unchecked = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=False
        )
        checked = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=True
        )
        assert {c.set_id for c in checked} <= {c.set_id for c in unchecked}

    def test_related_set_survives_check(self, table2_signature):
        # S4 (id 3) is the true answer at delta = 0.7; the check filter
        # must keep it.
        reference, collection, index, phi, signature = table2_signature
        checked = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=True
        )
        assert 3 in {c.set_id for c in checked}

    def test_skip_set(self, table2_signature):
        reference, collection, index, phi, signature = table2_signature
        infos = select_and_check(
            reference, signature, index, phi, 2.1, collection,
            apply_check=False, skip_set=3,
        )
        assert 3 not in {c.set_id for c in infos}

    def test_size_range(self, table2_signature):
        reference, collection, index, phi, signature = table2_signature
        infos = select_and_check(
            reference, signature, index, phi, 2.1, collection,
            apply_check=False, size_range=(4.0, 10.0),
        )
        # All sets in Table 2 have 3 elements; none qualify.
        assert infos == []

    def test_witnessed_similarities_exceed_bounds(self, table2_signature):
        reference, collection, index, phi, signature = table2_signature
        infos = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=False
        )
        for info in infos:
            for i, score in info.best.items():
                assert score > signature.element_bounds[i]


class TestCandidateInfoEstimate:
    def test_estimate_without_witnesses(self):
        info = CandidateInfo(set_id=0)
        assert info.estimate((0.5, 0.5)) == pytest.approx(1.0)

    def test_estimate_with_witness(self):
        info = CandidateInfo(set_id=0, best={0: 0.9})
        assert info.estimate((0.5, 0.5)) == pytest.approx(1.4)


class TestNNSearch:
    def test_finds_exact_nearest_neighbor(self, table2):
        reference, collection = table2
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        # r1 = {a,b,c,f,h}; in S4 the closest element is s41 = {a,b,c,h}
        # with Jaccard 4/5.
        best = nn_search(reference.elements[0], 3, index, phi, collection)
        assert best == pytest.approx(0.8)

    def test_floor_short_circuits(self, table2):
        reference, collection = table2
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        best = nn_search(
            reference.elements[0], 3, index, phi, collection, floor=0.95
        )
        # Nothing beats 0.95, so the floor is returned unchanged.
        assert best == pytest.approx(0.95)

    def test_no_shared_tokens_returns_floor(self):
        collection = SetCollection.from_strings([["x y z"]])
        sibling = collection.sibling()
        probe = sibling.add_set(["a b c"])
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        assert nn_search(probe.elements[0], 0, index, phi, collection) == 0.0


class TestNearestNeighborFilter:
    def test_example9_prunes_s3(self, table2):
        # Example 9: with the weighted signature of Example 6, candidate
        # S3 (id 2) is pruned by the NN filter.
        reference, collection = table2
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        signature = get_scheme("weighted").generate(reference, 2.1, phi, index)
        infos = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=False
        )
        survivors = nearest_neighbor_filter(
            reference, infos, signature.element_bounds, 2.1,
            index, phi, collection,
        )
        assert 2 not in {c.set_id for c in survivors}

    def test_true_result_survives(self, table2):
        reference, collection = table2
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        signature = get_scheme("weighted").generate(reference, 2.1, phi, index)
        infos = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=False
        )
        survivors = nearest_neighbor_filter(
            reference, infos, signature.element_bounds, 2.1,
            index, phi, collection,
        )
        assert 3 in {c.set_id for c in survivors}

    def test_filter_is_monotone(self, table2):
        reference, collection = table2
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        signature = get_scheme("weighted").generate(reference, 2.1, phi, index)
        infos = select_and_check(
            reference, signature, index, phi, 2.1, collection, apply_check=False
        )
        survivors = nearest_neighbor_filter(
            reference, infos, signature.element_bounds, 2.1,
            index, phi, collection,
        )
        assert {c.set_id for c in survivors} <= {c.set_id for c in infos}

    def test_edit_no_share_cap_keeps_soundness(self):
        # Two strings with no shared 1-gram can still have eds > 0; the
        # cap must keep such candidates alive when theta is low.
        collection = SetCollection.from_strings(
            [["ab"]], kind=SimilarityKind.EDS, q=1
        )
        sibling = collection.sibling()
        reference = sibling.add_set(["cd"])
        phi = SimilarityFunction(SimilarityKind.EDS)
        index = InvertedIndex(collection)
        info = CandidateInfo(set_id=0)
        survivors = nearest_neighbor_filter(
            reference, [info], (1.0,), theta=0.3,
            index=index, phi=phi, collection=collection, q=1,
        )
        # cap = 2 / (2 + 2) = 0.5 >= 0.3: must NOT be pruned even though
        # the index-backed NN search finds nothing.
        assert survivors == [info]
