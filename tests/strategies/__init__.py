"""Hypothesis strategies shared by the property-based suites.

Strategies produce small-but-adversarial workloads: token sets drawn
from a deliberately tiny vocabulary (to force collisions, duplicates
and empty elements), and engine configurations sweeping both
relatedness metrics, the token- and edit-based similarity kinds, all
practical signature schemes, and the filter toggles.  Every generated
configuration is valid by construction, so failures always point at
the code under test.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.config import Relatedness, SilkMothConfig
from repro.sim.functions import SimilarityKind

#: A tiny vocabulary, so generated sets actually overlap.
WORDS = ("ash", "bay", "elm", "fir", "ivy", "oak", "sky", "yew")

#: The paper's practical signature schemes (Sections 4 and 6) plus the
#: planner's ``auto`` selection.  The ``exhaustive`` and ``random``
#: registry entries are test oracles, not schemes anyone deploys, and
#: are exponential/randomised respectively.
SCHEMES = (
    "weighted",
    "unweighted",
    "comb_unweighted",
    "sim_thresh",
    "skyline",
    "dichotomy",
    "auto",
)

#: Gram lengths the edit-kind strategy sweeps: the evaluation's rule
#: (None) plus pinned values on both sides of the
#: ``q < alpha / (1 - alpha)`` constraint.  Out-of-constraint values
#: are *deliberately* included -- the query planner must keep them
#: exact via the full-scan fallback (the pre-planner latent bug).
EDIT_QS = (None, 1, 2, 3, 5)

TOKEN_KINDS = (
    SimilarityKind.JACCARD,
    SimilarityKind.DICE,
    SimilarityKind.COSINE,
    SimilarityKind.OVERLAP,
)

EDIT_KINDS = (SimilarityKind.EDS, SimilarityKind.NEDS)


def elements(max_words: int = 3) -> st.SearchStrategy[str]:
    """One element: a short bag of vocabulary words (possibly empty)."""
    return st.lists(st.sampled_from(WORDS), min_size=0, max_size=max_words).map(
        " ".join
    )


def token_sets(
    min_elements: int = 0, max_elements: int = 4
) -> st.SearchStrategy[list[str]]:
    """One set: a list of elements (duplicates and empties allowed)."""
    return st.lists(elements(), min_size=min_elements, max_size=max_elements)


def collections(
    min_sets: int = 1, max_sets: int = 6
) -> st.SearchStrategy[list[list[str]]]:
    """A searched collection S as raw string sets."""
    return st.lists(token_sets(), min_size=min_sets, max_size=max_sets)


def token_configs(**overrides) -> st.SearchStrategy[SilkMothConfig]:
    """Configurations across both metrics, all token kinds and schemes."""
    return st.builds(
        SilkMothConfig,
        metric=st.sampled_from(tuple(Relatedness)),
        similarity=st.sampled_from(TOKEN_KINDS),
        delta=st.sampled_from((0.25, 0.5, 0.7, 0.9, 1.0)),
        alpha=st.sampled_from((0.0, 0.35)),
        scheme=st.sampled_from(SCHEMES),
        check_filter=st.booleans(),
        nn_filter=st.booleans(),
        **{key: st.just(value) for key, value in overrides.items()},
    )


def edit_configs(**overrides) -> st.SearchStrategy[SilkMothConfig]:
    """Configurations for the edit-based kinds, with ``q`` unrestricted.

    ``q=None`` applies the evaluation's ``q < alpha / (1 - alpha)``
    rule (Section 8.1); the pinned values sweep both sides of the
    constraint.  Exactness for out-of-constraint combinations is the
    query planner's job: it routes configurations whose scheme cannot
    certify Lemma 1 through the exact full-scan fallback
    (:mod:`repro.planner.validity`), so *every* generated configuration
    must match brute force.
    """
    return st.builds(
        SilkMothConfig,
        metric=st.sampled_from(tuple(Relatedness)),
        similarity=st.sampled_from(EDIT_KINDS),
        delta=st.sampled_from((0.4, 0.7)),
        alpha=st.sampled_from((0.0, 0.35, 0.6, 0.8)),
        q=st.sampled_from(EDIT_QS),
        scheme=st.sampled_from(SCHEMES),
        check_filter=st.booleans(),
        nn_filter=st.booleans(),
        **{key: st.just(value) for key, value in overrides.items()},
    )


def string_sets(
    min_elements: int = 0, max_elements: int = 3
) -> st.SearchStrategy[list[str]]:
    """Sets of short raw strings for the edit-based kinds."""
    alphabet = st.sampled_from("abc")
    word = st.text(alphabet=alphabet, min_size=0, max_size=5)
    return st.lists(word, min_size=min_elements, max_size=max_elements)


def string_collections(
    min_sets: int = 1, max_sets: int = 5
) -> st.SearchStrategy[list[list[str]]]:
    """A searched collection of raw-string sets (edit kinds)."""
    return st.lists(string_sets(), min_size=min_sets, max_size=max_sets)
