"""Packed-array token kernels: identity with the frozenset reference.

The numpy backend's collection-backed kernels
(``indexed_token_similarities`` and the packed token weight matrix)
must be bit-identical to the pure-Python backend on the same inputs --
including empty elements, empty probes, ephemeral (negative) query
token ids, and reduction residual records (which must *not* take the
packed fast path because their set ids alias live records).
"""

import random

import pytest

from repro.backends import get_backend, numpy_available
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityFunction, SimilarityKind

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


@pytest.fixture(autouse=True)
def force_packed_path():
    """Zero the adaptive dispatch thresholds so the packed kernels run.

    Production dispatch only routes large batches through the packed
    path (measurement: frozensets win below the thresholds); these
    tests are about the packed kernels' exactness, so they force them.
    """
    if not numpy_available():
        yield
        return
    backend = get_backend("numpy")
    saved = (backend.packed_min_pairs, backend.packed_min_cells)
    backend.packed_min_pairs = 0
    backend.packed_min_cells = 0
    try:
        yield
    finally:
        backend.packed_min_pairs, backend.packed_min_cells = saved

TOKEN_KINDS = [
    SimilarityKind.JACCARD,
    SimilarityKind.DICE,
    SimilarityKind.COSINE,
    SimilarityKind.OVERLAP,
]


def _collection(rng, kind):
    words = ["aa", "bb", "cc", "dd", "ee", "ff"]
    sets = []
    for _ in range(12):
        elements = []
        for _ in range(rng.randint(1, 5)):
            count = rng.randint(0, 4)  # 0 -> empty-after-tokenisation
            elements.append(" ".join(rng.choice(words) for _ in range(count)))
        sets.append(elements)
    return SetCollection.from_strings(sets, kind=kind)


@pytest.mark.parametrize("kind", TOKEN_KINDS)
@pytest.mark.parametrize("alpha", [0.0, 0.4])
def test_indexed_similarities_match_python_backend(kind, alpha):
    rng = random.Random(13)
    collection = _collection(rng, kind)
    phi = SimilarityFunction(kind=kind, alpha=alpha)
    python = get_backend("python")
    numpy = get_backend("numpy")
    pairs = [
        (set_id, j)
        for set_id in range(len(collection))
        for j in range(len(collection[set_id]))
    ]
    rng.shuffle(pairs)
    probes = [
        collection[0].elements[0].index_tokens,
        frozenset(),
        # Ephemeral ids from a non-interned query reference.
        collection.query_set(["aa zz unseen", ""]).elements[0].index_tokens,
    ]
    for probe in probes:
        expected = python.indexed_token_similarities(
            probe, collection, pairs, phi
        )
        got = numpy.indexed_token_similarities(probe, collection, pairs, phi)
        assert got == expected


@pytest.mark.parametrize("kind", TOKEN_KINDS)
@pytest.mark.parametrize("alpha", [0.0, 0.4])
def test_weight_matrix_packed_path_matches_python_backend(kind, alpha):
    rng = random.Random(17)
    collection = _collection(rng, kind)
    phi = SimilarityFunction(kind=kind, alpha=alpha)
    python = get_backend("python")
    numpy = get_backend("numpy")
    reference = collection.query_set(["aa bb", "", "cc dd ee", "aa zz"])
    for candidate in collection:
        expected = python.weight_matrix(
            reference, candidate, phi, collection=collection
        )
        got = numpy.weight_matrix(
            reference, candidate, phi, collection=collection
        )
        assert got.shape == (len(reference), len(candidate))
        for i in range(len(reference)):
            for j in range(len(candidate)):
                assert got[i, j] == expected[i][j], (candidate.set_id, i, j)


def test_packed_toggle_falls_back_to_frozenset_kernels():
    # The perf harness's baseline switch: packed off must produce the
    # same numbers through the same entry points.
    rng = random.Random(23)
    collection = _collection(rng, SimilarityKind.JACCARD)
    phi = SimilarityFunction(kind=SimilarityKind.JACCARD)
    numpy = get_backend("numpy")
    pairs = [(0, j) for j in range(len(collection[0]))]
    probe = collection[1].elements[0].index_tokens
    with_packed = numpy.indexed_token_similarities(probe, collection, pairs, phi)
    numpy.packed_enabled = False
    try:
        without_packed = numpy.indexed_token_similarities(
            probe, collection, pairs, phi
        )
    finally:
        numpy.packed_enabled = True
    assert with_packed == without_packed


def test_service_compaction_prunes_dead_packed_sets():
    from repro.core.config import SilkMothConfig
    from repro.service import SilkMothService

    service = SilkMothService(
        SilkMothConfig(delta=0.5, backend="numpy"), compact_dead_fraction=1.0
    )
    for _ in range(6):
        service.add_set(["aa bb", "cc dd"])
    service.search(["aa bb"])  # packs the live sets
    backend = service.engine.backend
    store = backend._store(service.collection)
    assert 0 in store._sets
    service.remove_set(0)
    assert service.compact() > 0
    assert 0 not in store._sets
    # Live sets keep their packed entries.
    assert any(set_id in store._sets for set_id in range(1, 6))


def test_residual_record_skips_the_packed_path():
    # A record aliasing a live set id but holding different elements
    # (the reduction's residual) must not be served packed arrays.
    from repro.core.records import SetRecord

    rng = random.Random(19)
    collection = _collection(rng, SimilarityKind.JACCARD)
    phi = SimilarityFunction(kind=SimilarityKind.JACCARD)
    numpy = get_backend("numpy")
    full = collection[0]
    residual = SetRecord(set_id=full.set_id, elements=full.elements[:1])
    reference = collection.query_set(["aa bb"])
    got = numpy.weight_matrix(reference, residual, phi, collection=collection)
    assert got.shape == (1, 1)
    expected = phi.tokens(
        reference.elements[0].index_tokens, residual.elements[0].index_tokens
    )
    assert got[0, 0] == expected
