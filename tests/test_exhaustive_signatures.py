"""Exhaustive and random schemes: optimality, validity, exactness."""

import random

import pytest

from repro.baselines.brute_force import brute_force_discover
from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.index.inverted import InvertedIndex
from repro.sim.functions import SimilarityFunction, SimilarityKind
from repro.signatures import (
    ExhaustiveScheme,
    RandomScheme,
    WeightedScheme,
    signature_cost,
)


def _random_sets(rng, n_sets, vocab_size=10):
    vocab = [f"w{i}" for i in range(vocab_size)]
    sets = []
    for _ in range(n_sets):
        elements = [
            " ".join(rng.sample(vocab, rng.randint(1, 4)))
            for _ in range(rng.randint(1, 3))
        ]
        sets.append(elements)
    return sets


def _residual_under_theta(signature, reference, phi, theta):
    """The weighted scheme's validity condition on a built signature."""
    from repro.signatures.weights import weights_for

    weights = weights_for(reference, phi)
    residual = 0.0
    for i, tokens in enumerate(signature.per_element):
        residual += weights[i].bound(len(tokens))
    return residual < theta + 1e-9


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(77)
    sets = _random_sets(rng, 20)
    collection = SetCollection.from_strings(sets)
    return collection, InvertedIndex(collection)


class TestExhaustiveOptimality:
    def test_never_worse_than_greedy(self, corpus):
        collection, index = corpus
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        exhaustive = ExhaustiveScheme()
        greedy = WeightedScheme()
        for reference in collection:
            theta = 0.7 * len(reference)
            opt = exhaustive.generate(reference, theta, phi, index)
            base = greedy.generate(reference, theta, phi, index)
            if base is None:
                assert opt is None
                continue
            assert opt is not None
            assert signature_cost(opt, index) <= signature_cost(base, index)

    def test_optimal_is_valid(self, corpus):
        collection, index = corpus
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        scheme = ExhaustiveScheme()
        for reference in collection:
            theta = 0.6 * len(reference)
            signature = scheme.generate(reference, theta, phi, index)
            if signature is not None:
                assert _residual_under_theta(signature, reference, phi, theta)

    def test_matches_brute_force_enumeration_on_tiny_sets(self):
        # Independent oracle: enumerate every token subset and take the
        # cheapest valid one; branch and bound must agree on the cost.
        from itertools import combinations

        from repro.signatures.weights import weights_for

        rng = random.Random(5)
        sets = _random_sets(rng, 8, vocab_size=6)
        collection = SetCollection.from_strings(sets)
        index = InvertedIndex(collection)
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        scheme = ExhaustiveScheme()

        for reference in collection:
            theta = 0.7 * len(reference)
            weights = weights_for(reference, phi)
            universe = sorted(reference.token_universe)
            if len(universe) > 10:
                continue
            occurrences = {
                token: [
                    i
                    for i, element in enumerate(reference.elements)
                    if token in element.signature_tokens
                ]
                for token in universe
            }
            best = None
            for size in range(len(universe) + 1):
                for combo in combinations(universe, size):
                    counts = [0] * len(reference)
                    for token in combo:
                        for i in occurrences[token]:
                            counts[i] += 1
                    residual = sum(
                        weights[i].bound(counts[i]) for i in range(len(reference))
                    )
                    if residual < theta:
                        cost = sum(index.list_length(t) for t in combo)
                        if best is None or cost < best:
                            best = cost
                if best is not None:
                    # Larger subsets can still be cheaper only if token
                    # costs were zero; keep scanning all sizes to be safe.
                    pass
            got = scheme.generate(reference, theta, phi, index)
            if best is None:
                assert got is None
            else:
                assert got is not None
                assert signature_cost(got, index) == best

    def test_falls_back_beyond_token_cap(self, corpus):
        collection, index = corpus
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        scheme = ExhaustiveScheme(max_tokens=1)
        reference = max(collection, key=lambda r: len(r.token_universe))
        signature = scheme.generate(reference, 0.7 * len(reference), phi, index)
        # Falls back to greedy but still yields a usable signature.
        assert signature is not None
        assert signature.scheme == "exhaustive"


class TestRandomScheme:
    def test_valid_signature(self, corpus):
        collection, index = corpus
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        scheme = RandomScheme(seed=3)
        for reference in collection:
            theta = 0.7 * len(reference)
            signature = scheme.generate(reference, theta, phi, index)
            if signature is not None:
                assert _residual_under_theta(signature, reference, phi, theta)

    def test_deterministic_per_seed(self, corpus):
        collection, index = corpus
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        reference = collection[0]
        theta = 0.7 * len(reference)
        a = RandomScheme(seed=1).generate(reference, theta, phi, index)
        b = RandomScheme(seed=1).generate(reference, theta, phi, index)
        assert a.tokens == b.tokens

    def test_usually_costlier_than_greedy(self, corpus):
        collection, index = corpus
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        greedy = WeightedScheme()
        rand = RandomScheme(seed=9)
        worse_or_equal = 0
        total = 0
        for reference in collection:
            theta = 0.7 * len(reference)
            g = greedy.generate(reference, theta, phi, index)
            r = rand.generate(reference, theta, phi, index)
            if g is None or r is None:
                continue
            total += 1
            if signature_cost(r, index) >= signature_cost(g, index):
                worse_or_equal += 1
        assert total > 0
        # Random should essentially never beat the greedy.
        assert worse_or_equal >= total * 0.8


class TestEngineExactnessWithAblationSchemes:
    @pytest.mark.parametrize("scheme", ["exhaustive", "random"])
    def test_discovery_exact(self, scheme):
        rng = random.Random(44)
        sets = _random_sets(rng, 18)
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY, delta=0.6, scheme=scheme
        )
        engine = SilkMoth(collection, config)
        got = sorted((p.reference_id, p.set_id) for p in engine.discover())
        expected = sorted(
            (p.reference_id, p.set_id)
            for p in brute_force_discover(collection, config)
        )
        assert got == expected
