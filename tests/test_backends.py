"""Compute-backend selection rules and kernel equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.backends as backends
from repro.backends import (
    BACKEND_ENV_VAR,
    KNOWN_BACKENDS,
    available_backends,
    get_backend,
    numpy_available,
)
from repro.backends.python_backend import PythonBackend
from repro.core.config import SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityFunction, SimilarityKind

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


class TestSelection:
    def test_explicit_python(self):
        assert get_backend("python").name == "python"

    def test_python_always_available(self):
        assert "python" in available_backends()

    def test_instances_cached(self):
        assert get_backend("python") is get_backend("python")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            get_backend("fortran")

    def test_env_var_forces_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert get_backend().name == "python"

    def test_env_var_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ValueError, match="unknown compute backend"):
            get_backend()

    def test_explicit_name_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend("python").name == "python"

    @needs_numpy
    def test_auto_prefers_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(backends, "numpy_available", lambda: False)
        assert get_backend().name == "python"

    def test_missing_numpy_explicit_request_raises(self, monkeypatch):
        def fail_load(name):
            raise RuntimeError("the numpy compute backend was requested")

        monkeypatch.setattr(backends, "_load", fail_load)
        monkeypatch.setitem(backends._INSTANCES, "numpy", None)
        backends._INSTANCES.pop("numpy")
        with pytest.raises(RuntimeError, match="numpy compute backend"):
            get_backend("numpy")

    def test_config_validates_backend_name(self):
        with pytest.raises(ValueError, match="backend"):
            SilkMothConfig(backend="gpu")

    def test_engine_uses_config_backend(self):
        collection = SetCollection.from_strings([["a b"]])
        engine = SilkMoth(collection, SilkMothConfig(backend="python"))
        assert engine.backend.name == "python"

    def test_pass_stats_record_backend(self):
        collection = SetCollection.from_strings([["a b"], ["a b"]])
        engine = SilkMoth(collection, SilkMothConfig(backend="python"))
        _, stats = engine.search_with_stats(collection[0], skip_set=0)
        assert stats.backend == "python"


def _token_set_strategy():
    return st.frozensets(st.integers(min_value=0, max_value=9), max_size=6)


@needs_numpy
class TestKernelEquivalence:
    """The numpy backend must be an exact drop-in for the Python one."""

    def setup_method(self):
        from repro.backends.numpy_backend import NumpyBackend

        self.py = PythonBackend()
        self.np_backend = NumpyBackend()

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=30), max_size=12),
        lo=st.integers(min_value=-1, max_value=15),
        hi=st.integers(min_value=-1, max_value=35),
    )
    @settings(max_examples=50, deadline=None)
    def test_size_filter(self, sizes, lo, hi):
        assert self.py.size_filter_indices(
            sizes, lo, hi
        ) == self.np_backend.size_filter_indices(sizes, lo, hi)

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=10, allow_nan=False), max_size=12
        ),
        cutoff=st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_threshold(self, values, cutoff):
        assert self.py.threshold_indices(
            values, cutoff
        ) == self.np_backend.threshold_indices(values, cutoff)

    @given(
        scalar=st.floats(min_value=0, max_value=10, allow_nan=False),
        values=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False), max_size=12
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_add_scalar(self, scalar, values):
        got = self.np_backend.add_scalar(scalar, values)
        expected = self.py.add_scalar(scalar, values)
        assert got == pytest.approx(expected, abs=1e-12)

    @given(
        probe=_token_set_strategy(),
        targets=st.lists(_token_set_strategy(), max_size=8),
        kind=st.sampled_from(
            (
                SimilarityKind.JACCARD,
                SimilarityKind.DICE,
                SimilarityKind.COSINE,
                SimilarityKind.OVERLAP,
            )
        ),
        alpha=st.sampled_from((0.0, 0.3, 0.7)),
    )
    @settings(max_examples=120, deadline=None)
    def test_token_similarities(self, probe, targets, kind, alpha):
        phi = SimilarityFunction(kind=kind, alpha=alpha)
        got = self.np_backend.token_similarities(probe, targets, phi)
        expected = self.py.token_similarities(probe, targets, phi)
        assert got == pytest.approx(expected, abs=1e-12)

    @given(
        left=st.lists(
            st.lists(st.sampled_from("abcdef"), max_size=3).map(" ".join),
            min_size=1,
            max_size=4,
        ),
        right=st.lists(
            st.lists(st.sampled_from("abcdef"), max_size=3).map(" ".join),
            min_size=1,
            max_size=4,
        ),
        alpha=st.sampled_from((0.0, 0.4)),
    )
    @settings(max_examples=60, deadline=None)
    def test_weight_matrix_and_score(self, left, right, alpha):
        collection = SetCollection.from_strings([left, right])
        phi = SimilarityFunction(kind=SimilarityKind.JACCARD, alpha=alpha)
        reference, candidate = collection[0], collection[1]
        py_matrix = self.py.weight_matrix(reference, candidate, phi)
        np_matrix = self.np_backend.weight_matrix(reference, candidate, phi)
        for i in range(len(reference)):
            for j in range(len(candidate)):
                assert self.py.matrix_entry(py_matrix, i, j) == pytest.approx(
                    self.np_backend.matrix_entry(np_matrix, i, j), abs=1e-12
                )
        assert self.py.assignment_score(py_matrix) == pytest.approx(
            self.np_backend.assignment_score(np_matrix), abs=1e-9
        )
