"""The staged pipeline: plans, stages, batches, and driver unification."""

import math

import pytest

from repro.backends import get_backend
from repro.baselines.brute_force import brute_force_discover
from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.parallel import parallel_discover
from repro.core.partitioned import partitioned_discover
from repro.core.records import SetCollection
from repro.filters.check import CandidateInfo
from repro.pipeline import CandidateBatch, QueryPlan, size_range
from repro.service import SilkMothService

SETS = [
    ["a b c", "d e"],
    ["a b c", "d f"],
    ["a b", "d e", "x"],
    ["x y", "z w"],
    ["a b c", "d e"],
]

STAGE_NAMES = ("signature", "select", "check", "nn", "verify")


def _engine(config=None):
    collection = SetCollection.from_strings(SETS)
    return SilkMoth(collection, config or SilkMothConfig(delta=0.5))


class TestQueryPlan:
    def test_build_and_execute(self):
        engine = _engine()
        plan = engine.plan(engine.collection[0], skip_set=0)
        assert plan.theta == pytest.approx(1.0)
        assert plan.skip_set == 0
        assert [stage.name for stage in plan.stages] == list(STAGE_NAMES)
        results, stats = plan.execute()
        assert [r.set_id for r in results] == [
            r.set_id for r in engine.search(engine.collection[0], skip_set=0)
        ]
        assert stats.backend == plan.backend.name

    def test_execute_records_stage_timings(self):
        engine = _engine()
        _, stats = engine.search_with_stats(engine.collection[0], skip_set=0)
        assert set(stats.stage_seconds) == set(STAGE_NAMES)
        assert all(seconds >= 0.0 for seconds in stats.stage_seconds.values())

    def test_run_stats_aggregate_stage_timings(self):
        engine = _engine()
        engine.discover()
        assert set(engine.stats.stage_seconds) == set(STAGE_NAMES)
        assert engine.stats.passes == len(SETS)

    def test_plan_is_reusable(self):
        engine = _engine()
        plan = engine.plan(engine.collection[0], skip_set=0)
        first, _ = plan.execute()
        second, _ = plan.execute()
        assert first == second

    def test_empty_reference_short_circuits(self):
        engine = _engine()
        reference = engine.reference_collection([[]])[0]
        results, stats = engine.search_with_stats(reference)
        assert results == []
        assert stats.stage_seconds == {}
        assert engine.stats.passes == 0

    def test_size_range_similarity(self):
        config = SilkMothConfig(delta=0.5)
        lo, hi = size_range(config, 4)
        assert lo == pytest.approx(2.0, abs=1e-6)
        assert hi == pytest.approx(8.0, abs=1e-6)

    def test_size_range_containment_unbounded_above(self):
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.5)
        lo, hi = size_range(config, 4)
        assert lo == pytest.approx(2.0, abs=1e-6)
        assert hi == math.inf

    def test_size_range_disabled(self):
        config = SilkMothConfig(size_filter=False)
        assert size_range(config, 4) == (-math.inf, math.inf)

    def test_filters_disabled_still_exact_and_monotone(self):
        config = SilkMothConfig(delta=0.5, check_filter=False, nn_filter=False)
        engine = _engine(config)
        baseline = _engine()
        reference = engine.collection[0]
        assert [r.set_id for r in engine.search(reference, skip_set=0)] == [
            r.set_id for r in baseline.search(baseline.collection[0], skip_set=0)
        ]
        _, stats = engine.search_with_stats(reference, skip_set=0)
        assert (
            stats.initial_candidates
            == stats.after_check
            == stats.after_nn
            == stats.verified
        )


class TestCandidateBatch:
    def test_take_preserves_parallel_columns(self):
        batch = CandidateBatch(
            set_ids=[1, 3, 5],
            sizes=[2, 4, 6],
            gains=[0.0, 0.5, 1.0],
            estimates=[1.0, 2.0, 3.0],
            best=[{0: 0.1}, {}, {1: 0.9}],
        )
        taken = batch.take([0, 2])
        assert taken.set_ids == [1, 5]
        assert taken.sizes == [2, 6]
        assert taken.gains == [0.0, 1.0]
        assert taken.estimates == [1.0, 3.0]
        assert taken.best == [{0: 0.1}, {1: 0.9}]
        assert len(taken) == 2

    def test_round_trip_through_infos(self):
        collection = SetCollection.from_strings(SETS)
        infos = [CandidateInfo(1, {0: 0.9}), CandidateInfo(3)]
        bounds = (0.5, 0.5)
        batch = CandidateBatch.from_infos(infos, collection, bounds)
        assert batch.set_ids == [1, 3]
        assert batch.sizes == [len(collection[1]), len(collection[3])]
        assert batch.gains == pytest.approx([0.4, 0.0])
        back = batch.to_infos()
        assert [info.set_id for info in back] == [1, 3]
        assert back[0].best == {0: 0.9}
        assert back[0].estimate(bounds) == pytest.approx(1.4)


class TestCrossDriverIdentity:
    """Every driver must return the same rows on the same workload."""

    @pytest.mark.parametrize("metric", list(Relatedness))
    def test_all_drivers_agree(self, metric):
        config = SilkMothConfig(metric=metric, delta=0.4)
        collection = SetCollection.from_strings(SETS)
        serial = SilkMoth(collection, config).discover()
        rows = [(p.reference_id, p.set_id) for p in serial]
        scores = [pytest.approx(p.score) for p in serial]

        oracle = brute_force_discover(
            SetCollection.from_strings(SETS), config
        )
        assert [(p.reference_id, p.set_id) for p in oracle] == rows
        assert [p.score for p in oracle] == scores

        fanned = parallel_discover(SETS, config, processes=2)
        assert [(p.reference_id, p.set_id) for p in fanned] == rows
        assert [p.score for p in fanned] == scores

        sharded = partitioned_discover(SETS, config, partition_size=2)
        assert [(p.reference_id, p.set_id) for p in sharded] == rows
        assert [p.score for p in sharded] == scores

    def test_service_batch_matches_serial_search(self):
        config = SilkMothConfig(delta=0.4)
        collection = SetCollection.from_strings(SETS)
        engine = SilkMoth(SetCollection.from_strings(SETS), config)
        service = SilkMothService(config, collection)
        batches = service.search_many(SETS)
        for raw, batch in zip(SETS, batches):
            reference = engine.collection.query_set(raw)
            expected = engine.search(reference)
            assert [r.set_id for r in batch] == [r.set_id for r in expected]
            for mine, oracle in zip(batch, expected):
                assert mine.score == pytest.approx(oracle.score)

    def test_backends_agree_across_drivers(self):
        rows = {}
        for backend in ("python", get_backend().name):
            config = SilkMothConfig(delta=0.4, backend=backend)
            rows[backend] = [
                (p.reference_id, p.set_id, round(p.score, 9))
                for p in parallel_discover(SETS, config, processes=1)
            ]
        first, *rest = rows.values()
        for other in rest:
            assert other == first
