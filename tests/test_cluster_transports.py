"""Transport parity: process and socket shards equal inline shards.

The property suites pin exactness through the inline transport; these
tests pin that the worker-process transports run the byte-identical
shard code -- same results, same mutations, same snapshots -- plus the
protocol behaviours that only exist remotely: pipelined submit/collect,
error mirroring, and clean shutdown.
"""

from __future__ import annotations

import pytest

from repro.cluster import ShardTransportError, SilkMothCluster
from repro.cluster.transport import (
    KNOWN_TRANSPORTS,
    make_transport,
    resolve_transport_name,
)
from repro.core.config import SilkMothConfig

REMOTE_TRANSPORTS = ("process", "socket")

DATA = [
    ["ash bay", "elm fir"],
    ["ash bay elm", "oak"],
    ["sky yew", "ivy"],
    ["ash", "fir elm"],
    ["oak sky", ""],
]

CONFIG = SilkMothConfig(delta=0.3)


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_remote_transport_matches_inline(transport):
    """Search, discovery and mutation answers match the inline cluster."""
    with SilkMothCluster.from_sets(DATA, CONFIG, shards=2) as inline:
        with SilkMothCluster.from_sets(
            DATA, CONFIG, shards=2, transport=transport
        ) as remote:
            assert remote.discover() == inline.discover()
            for target in (inline, remote):
                target.add_set(["ash bay fresh"])
                target.remove_set(1)
            for reference in (["ash bay"], ["oak sky"], [""]):
                assert remote.search(reference) == inline.search(reference)
            assert remote.live_set_ids() == inline.live_set_ids()


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_remote_snapshot_round_trip(transport, tmp_path):
    """A remote-transport cluster snapshots and reloads identically."""
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, transport=transport
    ) as cluster:
        expected = cluster.search(["ash bay"])
        cluster.save(manifest)
    loaded = SilkMothCluster.load(manifest, CONFIG, transport=transport)
    try:
        assert loaded.search(["ash bay"]) == expected
    finally:
        loaded.close()


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_worker_errors_are_mirrored(transport):
    """An exception inside a worker surfaces as ShardTransportError."""
    endpoint = make_transport(transport, CONFIG, [("ash",)])
    try:
        assert endpoint.request("ping") == "pong"
        with pytest.raises(ShardTransportError) as excinfo:
            endpoint.request("no_such_command", ())
        assert "no_such_command" in str(excinfo.value)
        # The worker survives a failed command.
        assert endpoint.request("ping") == "pong"
    finally:
        endpoint.close()


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_pipelined_submits_collect_in_order(transport):
    """submit/submit/collect/collect pairs replies in request order."""
    endpoint = make_transport(transport, CONFIG, [("ash",), ("oak",)])
    try:
        endpoint.submit("info", ())
        endpoint.submit("summary", ())
        info = endpoint.collect()
        hashes, has_empty = endpoint.collect()
        assert info["live_sets"] == 2
        assert hashes and not has_empty
    finally:
        endpoint.close()


def test_collect_without_submit_raises():
    """Protocol misuse fails fast instead of deadlocking."""
    endpoint = make_transport("process", CONFIG, ())
    try:
        with pytest.raises(ShardTransportError):
            endpoint.collect()
    finally:
        endpoint.close()


def test_transport_knob_resolution(monkeypatch):
    """SILKMOTH_CLUSTER_TRANSPORT names the default transport."""
    monkeypatch.delenv("SILKMOTH_CLUSTER_TRANSPORT", raising=False)
    assert resolve_transport_name(None) == "inline"
    assert resolve_transport_name("socket") == "socket"
    monkeypatch.setenv("SILKMOTH_CLUSTER_TRANSPORT", "process")
    assert resolve_transport_name(None) == "process"
    with pytest.raises(ValueError):
        resolve_transport_name("carrier-pigeon")
    with pytest.raises(ValueError):
        make_transport("carrier-pigeon", CONFIG)
    assert set(KNOWN_TRANSPORTS) == {"inline", "process", "socket"}


def test_failed_fanout_does_not_desynchronize_later_queries():
    """All routed replies drain even when one shard fails mid-fan-out.

    The protocol pairs replies with submissions by order (no request
    ids), so a shard error that aborted collection early would leave
    queued replies to be mis-paired with the *next* command.  After a
    failure, the surviving shards must answer later queries correctly.
    """
    with SilkMothCluster.from_sets(DATA, CONFIG, shards=2) as cluster:
        expected_a = cluster.search(["ash bay"])
        expected_b = cluster.search(["oak sky"])
        cluster.cache.invalidate()

        host = cluster._transports[0].host
        original = host.handle
        calls = {"n": 0}

        def failing_handle(command, payload):
            if command == "search":
                calls["n"] += 1
                raise RuntimeError("injected shard failure")
            return original(command, payload)

        host.handle = failing_handle
        with pytest.raises(ShardTransportError) as excinfo:
            cluster.search(["ash bay"])
        assert "injected shard failure" in str(excinfo.value)
        assert calls["n"] == 1  # the query did reach the broken shard
        host.handle = original
        cluster.cache.invalidate()
        # The very next queries pair replies correctly again.
        assert cluster.search(["oak sky"]) == expected_b
        assert cluster.search(["ash bay"]) == expected_a


def test_close_is_idempotent_and_reaps_workers():
    """Closing twice is safe and leaves no live worker behind."""
    endpoint = make_transport("process", CONFIG, [("ash",)])
    process = endpoint._process
    endpoint.close()
    endpoint.close()
    assert process is not None and not process.is_alive()
