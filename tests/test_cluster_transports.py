"""Transport parity: process and socket shards equal inline shards.

The property suites pin exactness through the inline transport; these
tests pin that the worker-process transports run the byte-identical
shard code -- same results, same mutations, same snapshots -- plus the
protocol behaviours that only exist remotely: pipelined submit/collect,
error mirroring, and clean shutdown.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterDegradedError,
    ShardTransportError,
    SilkMothCluster,
)
from repro.cluster.transport import (
    KNOWN_TRANSPORTS,
    make_transport,
    resolve_transport_name,
)
from repro.core.config import SilkMothConfig

REMOTE_TRANSPORTS = ("process", "socket")

DATA = [
    ["ash bay", "elm fir"],
    ["ash bay elm", "oak"],
    ["sky yew", "ivy"],
    ["ash", "fir elm"],
    ["oak sky", ""],
]

CONFIG = SilkMothConfig(delta=0.3)


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_remote_transport_matches_inline(transport):
    """Search, discovery and mutation answers match the inline cluster."""
    with SilkMothCluster.from_sets(DATA, CONFIG, shards=2) as inline:
        with SilkMothCluster.from_sets(
            DATA, CONFIG, shards=2, transport=transport
        ) as remote:
            assert remote.discover() == inline.discover()
            for target in (inline, remote):
                target.add_set(["ash bay fresh"])
                target.remove_set(1)
            for reference in (["ash bay"], ["oak sky"], [""]):
                assert remote.search(reference) == inline.search(reference)
            assert remote.live_set_ids() == inline.live_set_ids()


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_remote_snapshot_round_trip(transport, tmp_path):
    """A remote-transport cluster snapshots and reloads identically."""
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, transport=transport
    ) as cluster:
        expected = cluster.search(["ash bay"])
        cluster.save(manifest)
    loaded = SilkMothCluster.load(manifest, CONFIG, transport=transport)
    try:
        assert loaded.search(["ash bay"]) == expected
    finally:
        loaded.close()


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_worker_errors_are_mirrored(transport):
    """An exception inside a worker surfaces as ShardTransportError."""
    endpoint = make_transport(transport, CONFIG, [("ash",)])
    try:
        assert endpoint.request("ping") == "pong"
        with pytest.raises(ShardTransportError) as excinfo:
            endpoint.request("no_such_command", ())
        assert "no_such_command" in str(excinfo.value)
        # The worker survives a failed command.
        assert endpoint.request("ping") == "pong"
    finally:
        endpoint.close()


@pytest.mark.parametrize("transport", REMOTE_TRANSPORTS)
def test_pipelined_submits_collect_in_order(transport):
    """submit/submit/collect/collect pairs replies in request order."""
    endpoint = make_transport(transport, CONFIG, [("ash",), ("oak",)])
    try:
        endpoint.submit("info", ())
        endpoint.submit("summary", ())
        info = endpoint.collect()
        hashes, has_empty = endpoint.collect()
        assert info["live_sets"] == 2
        assert hashes and not has_empty
    finally:
        endpoint.close()


@pytest.mark.parametrize("transport", KNOWN_TRANSPORTS)
def test_collect_without_submit_raises(transport):
    """Protocol misuse fails fast and uniformly on every transport."""
    endpoint = make_transport(transport, CONFIG, ())
    try:
        with pytest.raises(
            ShardTransportError, match="without a pending submit"
        ):
            endpoint.collect()
        # Misuse is diagnosed, not destructive: the endpoint still works.
        assert endpoint.request("ping") == "pong"
    finally:
        endpoint.close()


def test_transport_knob_resolution(monkeypatch):
    """SILKMOTH_CLUSTER_TRANSPORT names the default transport."""
    monkeypatch.delenv("SILKMOTH_CLUSTER_TRANSPORT", raising=False)
    assert resolve_transport_name(None) == "inline"
    assert resolve_transport_name("socket") == "socket"
    monkeypatch.setenv("SILKMOTH_CLUSTER_TRANSPORT", "process")
    assert resolve_transport_name(None) == "process"
    with pytest.raises(ValueError):
        resolve_transport_name("carrier-pigeon")
    with pytest.raises(ValueError):
        make_transport("carrier-pigeon", CONFIG)
    assert set(KNOWN_TRANSPORTS) == {"inline", "process", "socket"}


def test_failed_fanout_does_not_desynchronize_later_queries():
    """A shard failure mid-fan-out degrades cleanly, never desyncs.

    The protocol pairs replies with submissions by order (no request
    ids), so a failed endpoint can never be reused -- the coordinator
    marks the replica dead instead.  With a single replica that makes
    the shard *lost*: queries needing it raise
    :class:`ClusterDegradedError` naming it, queries routed elsewhere
    still answer, and :meth:`revive` rebuilds the shard from the
    coordinator's directory so later queries are correct again.
    """
    with SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, backoff=0.0
    ) as cluster:
        expected_a = cluster.search(["ash bay"])
        expected_b = cluster.search(["oak sky"])
        cluster.cache.invalidate()

        host = cluster._shards[0][0].host
        original = host.handle
        calls = {"n": 0}

        def failing_handle(command, payload):
            if command == "search":
                calls["n"] += 1
                raise RuntimeError("injected shard failure")
            return original(command, payload)

        host.handle = failing_handle
        with pytest.raises(ClusterDegradedError) as excinfo:
            cluster.search(["ash bay"])
        assert excinfo.value.shards == (0,)
        assert calls["n"] == 1  # the query did reach the broken shard
        assert cluster.lost_shards() == [0]
        # Revive rebuilds shard 0 from the coordinator's raw/placement
        # state (dropping the monkeypatched host with it); the very
        # next queries answer correctly again.
        assert cluster.revive() == 1
        assert cluster.lost_shards() == []
        cluster.cache.invalidate()
        assert cluster.search(["oak sky"]) == expected_b
        assert cluster.search(["ash bay"]) == expected_a


@pytest.mark.parametrize("transport", KNOWN_TRANSPORTS)
def test_close_is_idempotent_and_normalizes_use_after_close(transport):
    """Double close is safe; use-after-close raises uniformly."""
    endpoint = make_transport(transport, CONFIG, [("ash",)])
    process = getattr(endpoint, "_process", None)
    endpoint.close()
    endpoint.close()
    if process is not None:
        assert not process.is_alive()
    with pytest.raises(ShardTransportError, match="closed"):
        endpoint.submit("ping", ())
    with pytest.raises(ShardTransportError):
        endpoint.collect()


@pytest.mark.parametrize("transport", KNOWN_TRANSPORTS)
def test_kill_is_abrupt_and_normalizes_use_after_kill(transport):
    """kill() models sudden worker death; the endpoint is then unusable."""
    endpoint = make_transport(transport, CONFIG, [("ash",)])
    endpoint.submit("ping", ())  # in-flight work dies with the worker
    process = getattr(endpoint, "_process", None)
    endpoint.kill()
    if process is not None:
        assert not process.is_alive()
    with pytest.raises(ShardTransportError):
        endpoint.submit("ping", ())
    with pytest.raises(ShardTransportError):
        endpoint.collect()
    endpoint.close()  # close after kill stays a no-op
