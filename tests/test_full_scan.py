"""The Section 7.3 fallback: no valid signature => exact full scan.

For edit similarity the weighted scheme is empty when
``q >= delta / (1 - delta)``: even selecting every q-chunk cannot push
the residual bound below theta.  The engine must then compare the
reference against every set -- slower, but still exact.
"""

import random

import pytest

from repro.baselines.brute_force import brute_force_discover
from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind
from repro.tokenize.tokenizers import max_q_for_delta


def _string_sets(rng, n_sets):
    words = ["signature", "matching", "filtering", "verification"]
    sets = []
    for _ in range(n_sets):
        elements = []
        for _ in range(rng.randint(1, 3)):
            word = rng.choice(words)
            if rng.random() < 0.4:
                chars = list(word)
                chars[rng.randrange(len(chars))] = rng.choice("xyz")
                word = "".join(chars)
            elements.append(word)
        sets.append(elements)
    return sets


class TestFullScanFallback:
    DELTA = 0.7  # max legal q is 2; q = 4 forces the empty scheme

    def _engine(self, sets, q):
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=SimilarityKind.EDS,
            delta=self.DELTA,
            alpha=0.0,
            q=q,
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=q
        )
        return SilkMoth(collection, config), config

    def test_oversized_q_triggers_full_scan(self):
        rng = random.Random(71)
        sets = _string_sets(rng, 10)
        engine, _ = self._engine(sets, q=4)
        _, stats = engine.search_with_stats(
            engine.collection[0], skip_set=0
        )
        assert stats.full_scan

    def test_legal_q_does_not(self):
        rng = random.Random(71)
        sets = _string_sets(rng, 10)
        q_ok = max_q_for_delta(self.DELTA)
        engine, _ = self._engine(sets, q=q_ok)
        _, stats = engine.search_with_stats(
            engine.collection[0], skip_set=0
        )
        assert not stats.full_scan

    def test_full_scan_is_still_exact(self):
        rng = random.Random(72)
        sets = _string_sets(rng, 12)
        engine, config = self._engine(sets, q=4)
        got = sorted((r.reference_id, r.set_id) for r in engine.discover())
        expected = sorted(
            (r.reference_id, r.set_id)
            for r in brute_force_discover(engine.collection, config)
        )
        assert got == expected

    def test_full_scan_respects_size_filter(self):
        # One huge set falls outside the SIMILARITY size window and must
        # be skipped even during a full scan.
        sets = [["abcdef"], ["abcdef"], ["a" * 3] * 40]
        engine, _ = self._engine(sets, q=4)
        _, stats = engine.search_with_stats(engine.collection[0], skip_set=0)
        assert stats.full_scan
        assert stats.initial_candidates == 1  # only the twin, not the giant

    def test_full_scan_counted_in_run_stats(self):
        rng = random.Random(73)
        sets = _string_sets(rng, 8)
        engine, _ = self._engine(sets, q=4)
        engine.discover()
        assert engine.stats.full_scans == len(sets)
