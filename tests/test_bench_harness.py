"""Tests for the benchmark harness and reporting helpers."""

import json

from repro.bench.harness import run_discovery, run_search, run_workload
from repro.bench.reporting import format_series
from repro.bench.trajectory import (
    SCHEMA,
    format_trajectory,
    run_trajectory,
    write_trajectory,
)
from repro.core.config import Relatedness, SilkMothConfig
from repro.core.records import SetCollection
from repro.workloads.applications import inclusion_dependency, schema_matching


class TestHarness:
    def test_run_discovery(self):
        collection = SetCollection.from_strings(
            [["a b", "c d"], ["a b", "c d"], ["x y"]]
        )
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.9)
        result = run_discovery(collection, config, label="smoke")
        assert result.label == "smoke"
        assert result.matches == 1
        assert result.seconds > 0
        assert result.stats.passes == 3

    def test_run_search(self):
        collection = SetCollection.from_strings(
            [["a b", "c d", "e f", "g h", "i j"], ["a b", "c d"], ["x y"]]
        )
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.9)
        result = run_search(collection, config, reference_ids=[1])
        assert result.matches == 1  # set1 contained in set0

    def test_run_workload_discovery_mode(self):
        workload = schema_matching(n_sets=30)
        result = run_workload(workload, label="schema")
        assert result.seconds > 0
        assert result.stats.passes == 30

    def test_run_workload_search_mode(self):
        workload = inclusion_dependency(n_sets=40, n_references=5)
        result = run_workload(workload)
        assert result.stats.passes == 5


class TestTrajectory:
    def test_tiny_run_produces_well_formed_payload(self):
        payload = run_trajectory(scale=0.05, backends=("python",))
        assert payload["schema"] == SCHEMA
        edit = payload["workloads"]["edit_verify"]
        assert edit["backend"] == "python"
        assert edit["baseline"]["seconds"] > 0
        assert edit["optimized"]["seconds"] > 0
        # Identical results across modes: the kernels change speed only.
        assert edit["baseline"]["matches"] == edit["optimized"]["matches"]
        assert edit["baseline"]["verified"] == edit["optimized"]["verified"]
        # The memo only runs in optimized mode, and it must be visible.
        assert edit["baseline"]["sim_cache_misses"] == 0
        assert edit["optimized"]["sim_cache_hits"] > 0
        token = payload["workloads"]["token_discover"]
        assert token["baseline"]["matches"] == token["optimized"]["matches"]
        assert payload["calibration"]["backends"]["python"]["seconds"] > 0

    def test_tiny_run_includes_sharded_discovery_entry(self):
        payload = run_trajectory(scale=0.05, backends=("python",))
        entry = payload["workloads"]["cluster_discover"]
        # Exactness pin: the cluster found the same related pairs.
        assert entry["optimized"]["matches"] == entry["baseline"]["matches"]
        assert entry["optimized"]["verified"] == entry["baseline"]["verified"]
        # One wall-clock point per measured worker count, each with its
        # busiest-shard critical path.
        assert entry["workers"]
        for point in entry["workers"].values():
            assert point["seconds"] > 0
            assert point["max_shard_seconds"] >= 0
        assert entry["optimized"]["workers"] == max(
            int(count) for count in entry["workers"]
        )
        assert payload["cpus"] >= 1
        assert "workers:" in format_trajectory(payload)

    def test_payload_stamps_provenance(self):
        payload = run_trajectory(scale=0.05, backends=("python",))
        # The machine/code stamps sit next to cpus so two committed
        # trajectory points are attributable; both degrade to
        # "unknown" rather than failing off-git or off-network.
        assert isinstance(payload["git_sha"], str) and payload["git_sha"]
        assert isinstance(payload["hostname"], str) and payload["hostname"]

    def test_write_trajectory_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        payload = write_trajectory(path, scale=0.05, backends=("python",))
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == payload["schema"]
        assert "edit_verify" in on_disk["workloads"]
        assert "cluster_discover" in on_disk["workloads"]
        assert "python" in format_trajectory(on_disk)


class TestReporting:
    def test_format_series_contains_all_points(self):
        text = format_series(
            "Figure X", "theta", [0.7, 0.8],
            {"OPT": [1.0, 0.5], "NOOPT": [3.0, 2.0]},
        )
        assert "Figure X" in text
        assert "OPT" in text and "NOOPT" in text
        assert "0.7" in text and "0.8" in text

    def test_format_series_extra_columns(self):
        text = format_series(
            "Fig", "n", [10], {"t": [0.1]}, extra={"candidates": [42]}
        )
        assert "candidates" in text
        assert "42" in text
