"""Unit and property tests for the signature schemes (Sections 4 and 6)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SetCollection
from repro.index.inverted import InvertedIndex
from repro.matching.score import matching_score
from repro.sim.functions import SimilarityFunction, SimilarityKind
from repro.signatures import SCHEME_NAMES, get_scheme
from repro.signatures.weights import NO_BUDGET, ElementWeights


def _table2():
    """The paper's running example (Table 2), tokens t1..t12 -> a..l."""
    t = {i: chr(96 + i) for i in range(1, 13)}

    def el(*ids):
        return " ".join(t[i] for i in ids)

    R = [el(1, 2, 3, 6, 8), el(4, 5, 7, 9, 10), el(1, 4, 5, 11, 12)]
    S = [
        [el(2, 3, 5, 6, 7), el(1, 2, 4, 5, 6), el(1, 2, 3, 4, 7)],
        [el(1, 6, 8), el(1, 4, 5, 6, 7), el(1, 2, 3, 7, 9)],
        [el(1, 2, 3, 4, 6, 8), el(2, 3, 11, 12), el(1, 2, 3, 5)],
        [el(1, 2, 3, 8), el(4, 5, 7, 9, 10), el(1, 4, 5, 6, 9)],
    ]
    collection = SetCollection.from_strings(S)
    reference = collection.sibling().add_set(R)
    return reference, collection


class TestElementWeights:
    def test_jaccard_bound(self):
        w = ElementWeights(SimilarityKind.JACCARD, length=5, n_tokens=5, budget=NO_BUDGET)
        assert w.bound(0) == 1.0
        assert w.bound(1) == pytest.approx(0.8)
        assert w.bound(5) == 0.0

    def test_edit_bound(self):
        w = ElementWeights(SimilarityKind.EDS, length=10, n_tokens=4, budget=NO_BUDGET)
        assert w.bound(0) == 1.0
        assert w.bound(2) == pytest.approx(10 / 12)

    def test_marginal_sums_to_bound_drop(self):
        w = ElementWeights(SimilarityKind.EDS, length=9, n_tokens=3, budget=NO_BUDGET)
        drop = sum(w.marginal(i) for i in range(3))
        assert drop == pytest.approx(w.bound(0) - w.bound(3))

    def test_jaccard_budget_from_alpha(self):
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.7)
        collection = SetCollection.from_strings([["a b c d e"]])
        w = ElementWeights.for_element(collection[0].elements[0], phi)
        # floor((1 - 0.7) * 5) + 1 = 2, as in Example 10.
        assert w.budget == 2

    def test_edit_budget_from_alpha(self):
        phi = SimilarityFunction(SimilarityKind.EDS, alpha=0.8)
        collection = SetCollection.from_strings(
            [["abcdefghij"]], kind=SimilarityKind.EDS, q=2
        )
        w = ElementWeights.for_element(collection[0].elements[0], phi)
        # floor(0.2 / 0.8 * 10) + 1 = 3.
        assert w.budget == 3

    def test_no_budget_when_alpha_zero(self):
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.0)
        collection = SetCollection.from_strings([["a b"]])
        w = ElementWeights.for_element(collection[0].elements[0], phi)
        assert w.budget == NO_BUDGET

    def test_effective_bound_alpha_cut(self):
        w = ElementWeights(SimilarityKind.JACCARD, length=5, n_tokens=5, budget=3)
        # Raw bound 0.4 < alpha 0.5 -> thresholded similarity must be 0.
        assert w.effective_bound(3, alpha=0.5) == 0.0

    def test_effective_bound_saturation(self):
        w = ElementWeights(SimilarityKind.JACCARD, length=5, n_tokens=5, budget=2)
        assert w.effective_bound(2, alpha=0.1) == 0.0

    def test_empty_element_bound(self):
        w = ElementWeights(SimilarityKind.JACCARD, length=0, n_tokens=0, budget=NO_BUDGET)
        assert w.bound(0) == 1.0


class TestSchemeRegistry:
    def test_all_names_resolve(self):
        for name in SCHEME_NAMES:
            assert get_scheme(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_scheme("nope")


@pytest.mark.parametrize("scheme_name", ["weighted", "skyline", "dichotomy"])
class TestWeightedFamilyValidity:
    """Lemma 1 / Theorem 3: residual bound below theta."""

    def test_residual_below_theta(self, scheme_name):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        theta = 0.7 * len(reference)
        signature = get_scheme(scheme_name).generate(reference, theta, phi, index)
        assert signature is not None
        assert signature.residual < theta

    def test_per_element_tokens_subset_of_element(self, scheme_name):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        signature = get_scheme(scheme_name).generate(
            reference, 2.1, phi, index
        )
        for element, tokens in zip(reference.elements, signature.per_element):
            assert tokens <= element.signature_tokens

    def test_flattened_is_union_of_unflattened(self, scheme_name):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        signature = get_scheme(scheme_name).generate(reference, 2.1, phi, index)
        union = frozenset().union(*signature.per_element)
        assert signature.tokens == union


class TestWeightedSchemeAdversarial:
    """Lemma 2 via construction: S_i = r_i \\ k_i scores exactly the residual."""

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_adversarial_set_is_caught(self, seed):
        rng = random.Random(seed)
        vocab = [f"w{i}" for i in range(12)]
        sets = [
            [" ".join(rng.sample(vocab, rng.randint(2, 5))) for _ in range(rng.randint(1, 4))]
            for _ in range(8)
        ]
        collection = SetCollection.from_strings(sets)
        reference = collection[0]
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        delta = 0.7
        theta = delta * len(reference)
        signature = get_scheme("weighted").generate(reference, theta, phi, index)
        assert signature is not None

        # Build the adversarial set S with s_i = r_i minus its signature
        # tokens.  Its matching score must be below theta (Lemma 1); and
        # it shares no token with the signature.
        vocab_obj = collection.vocabulary
        adversary = []
        for element, k_i in zip(reference.elements, signature.per_element):
            remaining = element.index_tokens - k_i
            adversary.append(" ".join(vocab_obj.token_of(t) for t in sorted(remaining)))
        sibling = collection.sibling()
        adversarial_record = sibling.add_set(adversary)

        shared = adversarial_record.token_universe & signature.tokens
        assert not shared
        score = matching_score(reference, adversarial_record, phi)
        assert score < theta + 1e-9


class TestUnweightedScheme:
    def test_example5_token_count(self):
        # theta = 2.1, c = 3: remove 2 occurrences; with whole-token
        # removal the two cheapest-to-remove... the greedy removes the
        # most expensive tokens whose occurrence counts fit budget 2.
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        index = InvertedIndex(collection)
        signature = get_scheme("unweighted").generate(reference, 2.1, phi, index)
        assert signature is not None
        # The flattened signature keeps at least |occurrences| - 2 tokens.
        total_occurrences = sum(len(e.signature_tokens) for e in reference.elements)
        kept = sum(len(k) for k in signature.per_element)
        assert kept >= total_occurrences - 2

    def test_comb_unweighted_trims_to_budget(self):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.7)
        index = InvertedIndex(collection)
        signature = get_scheme("comb_unweighted").generate(reference, 2.1, phi, index)
        budget = 2  # floor(0.3 * 5) + 1
        for tokens in signature.per_element:
            assert len(tokens) <= 5  # never exceeds element size
        # At least one element must have been trimmed to the budget.
        assert any(len(tokens) <= budget for tokens in signature.per_element)


class TestSimThreshScheme:
    def test_requires_alpha(self):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.0)
        index = InvertedIndex(collection)
        assert get_scheme("sim_thresh").generate(reference, 2.1, phi, index) is None

    def test_example10_budget(self):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.7)
        index = InvertedIndex(collection)
        signature = get_scheme("sim_thresh").generate(reference, 2.1, phi, index)
        assert signature is not None
        # Example 10: |m_i| = 2 for every element.
        assert all(len(m) == 2 for m in signature.per_element)
        assert all(b == 0.0 for b in signature.element_bounds)


class TestSkylineAndDichotomy:
    def test_reduce_to_weighted_at_alpha_zero(self):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.0)
        index = InvertedIndex(collection)
        weighted = get_scheme("weighted").generate(reference, 2.1, phi, index)
        skyline = get_scheme("skyline").generate(reference, 2.1, phi, index)
        dichotomy = get_scheme("dichotomy").generate(reference, 2.1, phi, index)
        assert skyline.tokens == weighted.tokens
        assert dichotomy.tokens == weighted.tokens

    def test_skyline_respects_budget(self):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.7)
        index = InvertedIndex(collection)
        signature = get_scheme("skyline").generate(reference, 2.1, phi, index)
        assert signature is not None
        for tokens, bound in zip(signature.per_element, signature.element_bounds):
            if len(tokens) >= 2:  # budget = 2 at alpha 0.7 with |r| = 5
                assert bound == 0.0

    def test_dichotomy_example13_small_signature(self):
        # Example 13 ends with a 2-token signature {t11, t12}.
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.7)
        index = InvertedIndex(collection)
        signature = get_scheme("dichotomy").generate(reference, 2.1, phi, index)
        assert signature is not None
        # Our greedy is cost-ordered, not identical to the paper's hand
        # trace, but the signature must be small (saturation shrinks it)
        # and valid.
        assert len(signature.tokens) <= 6

    def test_dichotomy_saturated_bounds_zero(self):
        reference, collection = _table2()
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.7)
        index = InvertedIndex(collection)
        signature = get_scheme("dichotomy").generate(reference, 2.1, phi, index)
        for tokens, bound in zip(signature.per_element, signature.element_bounds):
            if len(tokens) >= 2:
                assert bound == 0.0


class TestEditSignatures:
    def _collection(self, q=2):
        sets = [
            ["silkmoth", "related", "matching"],
            ["silkmoth", "related", "matchings"],
            ["different", "words", "entirely"],
        ]
        return SetCollection.from_strings(sets, kind=SimilarityKind.EDS, q=q)

    def test_weighted_edit_residual(self):
        collection = self._collection()
        reference = collection[0]
        phi = SimilarityFunction(SimilarityKind.EDS)
        index = InvertedIndex(collection)
        theta = 0.7 * len(reference)
        signature = get_scheme("weighted").generate(reference, theta, phi, index)
        assert signature is not None
        assert signature.residual < theta

    def test_signature_tokens_are_chunks(self):
        collection = self._collection()
        reference = collection[0]
        phi = SimilarityFunction(SimilarityKind.EDS)
        index = InvertedIndex(collection)
        signature = get_scheme("weighted").generate(reference, 2.1, phi, index)
        for element, tokens in zip(reference.elements, signature.per_element):
            assert tokens <= element.signature_tokens

    def test_too_large_q_yields_no_signature(self):
        # Section 7.3: a too-large q empties the scheme.  With |r| = 30
        # and q = 20 there are 2 chunks, so the best achievable residual
        # is 30/32 = 0.9375; any theta at or below that admits no valid
        # signature and the engine must full-scan.
        sets = [["abcdefghij" * 3], ["abcdefghij" * 3]]
        collection = SetCollection.from_strings(sets, kind=SimilarityKind.EDS, q=20)
        reference = collection[0]
        phi = SimilarityFunction(SimilarityKind.EDS)
        index = InvertedIndex(collection)
        theta = 0.9 * len(reference)  # 0.9 < 0.9375
        signature = get_scheme("weighted").generate(reference, theta, phi, index)
        assert signature is None
