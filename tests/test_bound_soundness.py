"""Property tests: every bound the filters rely on is a true upper bound.

These are the load-bearing inequalities of the paper:

* Jaccard: ``phi(r, s) <= (|r| - |k|) / |r|`` when s shares no token
  with k (Section 4.2's Lemma 1 step).
* Edit: ``Eds(r, s) <= |r| / (|r| + |k|)`` when s shares no q-gram with
  the selected q-chunks k (Section 7.1).
* Sim-thresh saturation: with ``floor((1-a)|r|)+1`` (Jaccard) or
  ``floor((1-a)/a |r|)+1`` (edit) unshared signature tokens, phi < a
  (Sections 6.1, 7.2).
* NN no-share cap: ``Eds(r, s) <= |r| / (|r| + ceil(|r|/q))`` when s
  shares no q-gram at all with r (Section 7.1 / NN filter).
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SetCollection
from repro.sim.functions import SimilarityFunction, SimilarityKind, eds, jaccard, neds
from repro.signatures.weights import ElementWeights

_WORDS = [f"w{i}" for i in range(20)]


@st.composite
def _jaccard_pair(draw):
    """A reference element, a chosen k subset, and a disjoint-from-k s."""
    r_tokens = draw(st.sets(st.sampled_from(_WORDS), min_size=1, max_size=8))
    k = draw(st.sets(st.sampled_from(sorted(r_tokens)), max_size=len(r_tokens)))
    s_pool = [w for w in _WORDS if w not in k]
    s_tokens = draw(st.sets(st.sampled_from(s_pool), min_size=1, max_size=8))
    return r_tokens, k, s_tokens


class TestJaccardBound:
    @given(_jaccard_pair())
    @settings(max_examples=200, deadline=None)
    def test_weighted_bound_holds(self, data):
        r_tokens, k, s_tokens = data
        bound = (len(r_tokens) - len(k)) / len(r_tokens)
        assert jaccard(r_tokens, s_tokens) <= bound + 1e-12

    @given(_jaccard_pair(), st.sampled_from([0.3, 0.5, 0.7, 0.9]))
    @settings(max_examples=200, deadline=None)
    def test_sim_thresh_saturation(self, data, alpha):
        r_tokens, _, s_tokens = data
        budget = math.floor((1 - alpha) * len(r_tokens)) + 1
        if budget > len(r_tokens):
            return
        k = set(sorted(r_tokens)[:budget])
        if k & s_tokens:
            return
        assert jaccard(r_tokens, s_tokens) < alpha + 1e-12


def _random_string(rng, length):
    return "".join(rng.choice("abcd") for _ in range(length))


class TestEditBounds:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_weighted_chunk_bound(self, seed, q):
        """Select some chunks of r; any s sharing none of them obeys the bound."""
        rng = random.Random(seed)
        collection = SetCollection.from_strings(
            [[_random_string(rng, rng.randint(2, 10))]],
            kind=SimilarityKind.EDS,
            q=q,
        )
        r = collection[0].elements[0]
        chunks = sorted(r.signature_tokens)
        k_size = rng.randint(0, len(chunks))
        k = set(chunks[:k_size])

        # Generate random candidate strings; keep only those sharing no
        # q-gram with k (token-level check via a sibling collection).
        sibling = collection.sibling()
        for _ in range(15):
            s_record = sibling.add_set([_random_string(rng, rng.randint(1, 12))])
            s = s_record.elements[0]
            if s.index_tokens & k:
                continue
            bound = r.length / (r.length + len(k))
            assert eds(r.text, s.text) <= bound + 1e-12
            assert neds(r.text, s.text) <= bound + 1e-12

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_no_share_cap(self, seed, q):
        """s sharing no q-gram at all with r obeys the ceil(|r|/q) cap."""
        rng = random.Random(seed)
        collection = SetCollection.from_strings(
            [[_random_string(rng, rng.randint(2, 10))]],
            kind=SimilarityKind.EDS,
            q=q,
        )
        r = collection[0].elements[0]
        sibling = collection.sibling()
        for _ in range(15):
            s_record = sibling.add_set([_random_string(rng, rng.randint(1, 12))])
            s = s_record.elements[0]
            if s.index_tokens & r.index_tokens:
                continue
            cap = r.length / (r.length + math.ceil(r.length / q))
            assert eds(r.text, s.text) <= cap + 1e-12

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_edit_sim_thresh_saturation(self, seed):
        """Budget-many unshared chunks force similarity below alpha."""
        rng = random.Random(seed)
        alpha = rng.choice([0.6, 0.7, 0.8])
        q = 2
        phi = SimilarityFunction(SimilarityKind.EDS, alpha=alpha)
        collection = SetCollection.from_strings(
            [[_random_string(rng, rng.randint(4, 12))]],
            kind=SimilarityKind.EDS,
            q=q,
        )
        r = collection[0].elements[0]
        weights = ElementWeights.for_element(r, phi)
        chunks = sorted(r.signature_tokens)
        if weights.budget > len(chunks):
            return
        k = set(chunks[: weights.budget])
        sibling = collection.sibling()
        for _ in range(15):
            s_record = sibling.add_set([_random_string(rng, rng.randint(1, 14))])
            s = s_record.elements[0]
            if s.index_tokens & k:
                continue
            assert eds(r.text, s.text) < alpha + 1e-12
