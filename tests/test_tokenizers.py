"""Unit tests for tokenizers, q-gram/q-chunk extraction, and vocabulary."""

import pytest

from repro.sim.functions import SimilarityKind
from repro.tokenize.tokenizers import (
    PAD_CHAR,
    Tokenizer,
    max_q_for_alpha,
    max_q_for_delta,
    pad_for_qgrams,
    qchunks,
    qgrams,
    whitespace_tokens,
)
from repro.tokenize.vocabulary import Vocabulary


class TestWhitespaceTokens:
    def test_basic(self):
        assert whitespace_tokens("77 Mass Ave") == ["77", "Mass", "Ave"]

    def test_collapses_runs(self):
        assert whitespace_tokens("a   b\t c") == ["a", "b", "c"]

    def test_empty(self):
        assert whitespace_tokens("") == []


class TestQGrams:
    def test_padding_length(self):
        assert pad_for_qgrams("abc", 4) == "abc" + PAD_CHAR * 3

    def test_count_equals_string_length(self):
        # With q-1 padding there are exactly len(element) q-grams.
        assert len(qgrams("abcde", 3)) == 5

    def test_values(self):
        grams = qgrams("abc", 2)
        assert grams == ["ab", "bc", "c" + PAD_CHAR]

    def test_empty_element(self):
        assert qgrams("", 3) == []

    def test_q_one(self):
        assert qgrams("abc", 1) == ["a", "b", "c"]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            pad_for_qgrams("abc", 0)


class TestQChunks:
    def test_count(self):
        # ceil(len / q) chunks.
        assert len(qchunks("abcde", 2)) == 3

    def test_values(self):
        assert qchunks("abcde", 2) == ["ab", "cd", "e" + PAD_CHAR]

    def test_chunks_are_subset_of_grams(self):
        element = "silkmoth finds related sets"
        for q in (2, 3, 4):
            grams = set(qgrams(element, q))
            for chunk in qchunks(element, q):
                assert chunk in grams

    def test_exact_multiple(self):
        assert qchunks("abcd", 2) == ["ab", "cd"]

    def test_empty(self):
        assert qchunks("", 2) == []


class TestQConstraints:
    def test_max_q_for_delta_strict(self):
        # q < delta / (1 - delta); delta = 0.8 gives limit 4, so q = 3.
        assert max_q_for_delta(0.8) == 3

    def test_max_q_for_delta_non_integer_limit(self):
        # delta = 0.7 gives limit 2.33..., q = 2.
        assert max_q_for_delta(0.7) == 2

    def test_max_q_for_alpha_paper_value(self):
        # Section 8.1 footnote: alpha = 0.85 gives q = 5.
        assert max_q_for_alpha(0.85) == 5

    def test_max_q_for_alpha_point8(self):
        # alpha = 0.8: limit 4, strict, so q = 3 (Table 3 note: q = 3).
        assert max_q_for_alpha(0.8) == 3

    def test_max_q_for_alpha_low(self):
        assert max_q_for_alpha(0.0) == 1
        assert max_q_for_alpha(0.5) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            max_q_for_delta(0.0)
        with pytest.raises(ValueError):
            max_q_for_alpha(-0.1)


class TestTokenizer:
    def test_jaccard_index_and_signature_agree(self):
        tokenizer = Tokenizer(SimilarityKind.JACCARD)
        assert tokenizer.index_tokens("a b c") == tokenizer.signature_tokens("a b c")

    def test_edit_index_tokens_are_grams(self):
        tokenizer = Tokenizer(SimilarityKind.EDS, q=2)
        assert tokenizer.index_tokens("abc") == ["ab", "bc", "c" + PAD_CHAR]

    def test_edit_signature_tokens_are_chunks(self):
        tokenizer = Tokenizer(SimilarityKind.EDS, q=2)
        assert tokenizer.signature_tokens("abc") == ["ab", "c" + PAD_CHAR]


class TestVocabulary:
    def test_intern_roundtrip(self):
        vocab = Vocabulary()
        i = vocab.intern("hello")
        assert vocab.token_of(i) == "hello"
        assert vocab.id_of("hello") == i

    def test_intern_idempotent(self):
        vocab = Vocabulary()
        assert vocab.intern("x") == vocab.intern("x")

    def test_ids_are_dense(self):
        vocab = Vocabulary()
        ids = [vocab.intern(t) for t in ["a", "b", "c"]]
        assert ids == [0, 1, 2]
        assert len(vocab) == 3

    def test_unknown_token(self):
        vocab = Vocabulary()
        assert vocab.id_of("missing") is None
        assert "missing" not in vocab

    def test_intern_all_preserves_duplicates(self):
        vocab = Vocabulary()
        assert vocab.intern_all(["a", "b", "a"]) == [0, 1, 0]
