"""Top-k search: exactness against brute-force ranking and edge cases."""

import random

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth, relatedness_value
from repro.core.records import SetCollection
from repro.core.topk import TopKSearcher
from repro.matching.score import matching_score
from repro.sim.functions import SimilarityKind


def _random_sets(rng, n_sets, vocab_size=12, max_elements=4, max_words=4):
    vocab = [f"w{i}" for i in range(vocab_size)]
    sets = []
    for _ in range(n_sets):
        elements = [
            " ".join(rng.sample(vocab, rng.randint(1, max_words)))
            for _ in range(rng.randint(1, max_elements))
        ]
        sets.append(elements)
    # Plant near-duplicates so a relatedness gradient exists.
    for i in range(0, n_sets - 1, 3):
        sets[i + 1] = list(sets[i])
        if rng.random() < 0.6:
            j = rng.randrange(len(sets[i + 1]))
            sets[i + 1][j] = " ".join(rng.sample(vocab, rng.randint(1, max_words)))
    return sets


def _brute_force_ranking(collection, config, reference, skip_set, min_delta):
    """All sets with relatedness >= min_delta, best first."""
    phi = config.phi
    scored = []
    for candidate in collection:
        if candidate.set_id == skip_set:
            continue
        score = matching_score(reference, candidate, phi)
        value = relatedness_value(
            config.metric, score, len(reference), len(candidate)
        )
        if value >= min_delta - 1e-9:
            scored.append((candidate.set_id, value))
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(99)
    sets = _random_sets(rng, 30)
    return SetCollection.from_strings(sets)


class TestTopKExactness:
    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_matches_brute_force(self, corpus, k):
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.8)
        searcher = TopKSearcher(corpus, config, min_delta=0.1)
        for ref_id in (0, 7, 14):
            reference = corpus[ref_id]
            got = searcher.search(reference, k, skip_set=ref_id)
            expected = _brute_force_ranking(
                corpus, config, reference, ref_id, min_delta=0.1
            )[:k]
            assert [r.set_id for r in got.results] == [sid for sid, _ in expected]
            for result, (_, value) in zip(got.results, expected):
                assert result.relatedness == pytest.approx(value)

    def test_containment_metric(self, corpus):
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.9)
        searcher = TopKSearcher(corpus, config, min_delta=0.2)
        reference = corpus[3]
        got = searcher.search(reference, 4, skip_set=3)
        expected = _brute_force_ranking(
            corpus, config, reference, 3, min_delta=0.2
        )[:4]
        assert [r.set_id for r in got.results] == [sid for sid, _ in expected]

    def test_results_sorted_descending(self, corpus):
        config = SilkMothConfig(delta=0.7)
        searcher = TopKSearcher(corpus, config, min_delta=0.1)
        got = searcher.search(corpus[0], 8, skip_set=0)
        values = [r.relatedness for r in got.results]
        assert values == sorted(values, reverse=True)


class TestTopKBehaviour:
    def test_k_zero(self, corpus):
        searcher = TopKSearcher(corpus, SilkMothConfig(delta=0.7))
        got = searcher.search(corpus[0], 0)
        assert got.results == ()
        assert got.levels == 0

    def test_saturated_flag_when_enough(self, corpus):
        searcher = TopKSearcher(
            corpus, SilkMothConfig(delta=0.9), min_delta=0.05
        )
        got = searcher.search(corpus[0], 1, skip_set=0)
        # With min_delta this low some set is within reach of k=1.
        if got.results:
            assert got.saturated or got.delta_used == pytest.approx(0.05)

    def test_unsaturated_returns_all_above_floor(self, corpus):
        config = SilkMothConfig(delta=0.95)
        searcher = TopKSearcher(corpus, config, min_delta=0.9)
        reference = corpus[5]
        got = searcher.search(reference, 25, skip_set=5)
        expected = _brute_force_ranking(
            corpus, config, reference, 5, min_delta=0.9
        )
        assert not got.saturated or len(expected) >= 25
        assert [r.set_id for r in got.results] == [
            sid for sid, _ in expected[:25]
        ]

    def test_deepening_levels_counted(self, corpus):
        searcher = TopKSearcher(
            corpus, SilkMothConfig(delta=0.99), shrink=0.5, min_delta=0.05
        )
        got = searcher.search(corpus[0], 10, skip_set=0)
        assert got.levels >= 1
        assert got.delta_used <= 0.99

    def test_engine_reuse_across_searches(self, corpus):
        searcher = TopKSearcher(corpus, SilkMothConfig(delta=0.8), min_delta=0.2)
        searcher.search(corpus[0], 3, skip_set=0)
        first_engines = len(searcher._engines)
        searcher.search(corpus[1], 3, skip_set=1)
        # Levels are geometric from the same start, so engines are reused.
        assert len(searcher._engines) >= first_engines

    def test_invalid_parameters(self, corpus):
        with pytest.raises(ValueError):
            TopKSearcher(corpus, SilkMothConfig(delta=0.7), shrink=1.5)
        with pytest.raises(ValueError):
            TopKSearcher(corpus, SilkMothConfig(delta=0.7), min_delta=0.9)
        with pytest.raises(ValueError):
            TopKSearcher(corpus, SilkMothConfig(delta=0.7), min_delta=0.0)


class TestTopKEditSimilarity:
    def test_edit_kind(self):
        rng = random.Random(4)
        words = ["silkmoth", "signature", "matching", "filters"]
        sets = []
        for _ in range(15):
            elements = []
            for _ in range(rng.randint(1, 3)):
                word = rng.choice(words)
                if rng.random() < 0.5:
                    chars = list(word)
                    chars[rng.randrange(len(chars))] = rng.choice("xyz")
                    word = "".join(chars)
                elements.append(word)
            sets.append(elements)
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS, delta=0.8, alpha=0.7
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=config.effective_q
        )
        searcher = TopKSearcher(collection, config, min_delta=0.2)
        got = searcher.search(collection[0], 5, skip_set=0)
        expected = _brute_force_ranking(
            collection, config, collection[0], 0, min_delta=0.2
        )[:5]
        assert [r.set_id for r in got.results] == [sid for sid, _ in expected]


class TestPrebuiltIndexValidation:
    def test_engine_rejects_foreign_index(self, corpus):
        from repro.index.inverted import InvertedIndex

        other = SetCollection.from_strings([["a b"], ["b c"]])
        foreign = InvertedIndex(other)
        with pytest.raises(ValueError):
            SilkMoth(corpus, SilkMothConfig(delta=0.7), index=foreign)

    def test_engine_accepts_own_index(self, corpus):
        from repro.index.inverted import InvertedIndex

        index = InvertedIndex(corpus)
        engine = SilkMoth(corpus, SilkMothConfig(delta=0.7), index=index)
        assert engine.index is index
