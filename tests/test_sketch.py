"""Sketch properties: error bound, exact merges, cluster-wide folds.

The diagnostics layer stands on two claims about
:class:`repro.obs.sketch.QuantileSketch`: every quantile estimate is
within ``alpha`` relative error of the true rank value, and merging is
*exact* -- associative, commutative, and equal to one sketch that
recorded everything.  Hypothesis pins both, and the cluster tests pin
the consequence users see: the coordinator's merged quantiles equal
the union of the shard recordings, over worker processes and on every
backend.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.cluster import SilkMothCluster
from repro.core.config import SilkMothConfig
from repro.obs.sketch import (
    DEFAULT_SKETCH_ALPHA,
    QuantileSketch,
    SketchRegistry,
    get_sketch_registry,
    merge_payloads,
    quantile_summary,
    reset_sketch_registry,
    resolve_sketch_alpha,
    set_sketch_alpha,
)

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} backend unavailable"),
    )
    for name in ("python", "numpy")
]

DATA = [
    ["ash bay", "elm fir"],
    ["ash bay elm", "oak"],
    ["sky yew", "ivy"],
    ["ash", "fir elm"],
    ["oak sky", ""],
]

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

values_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=120,
)


@pytest.fixture(autouse=True)
def clean_sketches():
    """Fresh process-global sketch registry and alpha around each test."""
    reset_sketch_registry()
    set_sketch_alpha(None)
    yield
    reset_sketch_registry()
    set_sketch_alpha(None)


def _fill(values, alpha=0.01):
    sketch = QuantileSketch(alpha)
    for value in values:
        sketch.record(value)
    return sketch


@_SETTINGS
@given(values=values_strategy, q=st.floats(min_value=0.0, max_value=1.0))
def test_quantile_relative_error_bound(values, q):
    """Estimates stay within alpha of the true value at the queried rank."""
    alpha = 0.01
    sketch = _fill(values, alpha)
    estimate = sketch.quantile(q)
    truth = sorted(values)[math.floor(q * (len(values) - 1))]
    assert estimate is not None
    assert abs(estimate - truth) <= alpha * truth + 1e-12


@_SETTINGS
@given(values=values_strategy)
def test_extremes_are_exact(values):
    """q=0 / q=1 clamp to the observed min / max exactly."""
    sketch = _fill(values)
    assert sketch.quantile(0.0) == min(values)
    assert sketch.quantile(1.0) == max(values)


@_SETTINGS
@given(a=values_strategy, b=values_strategy, c=values_strategy)
def test_merge_is_associative_and_commutative(a, b, c):
    """Any merge order yields the same sketch as one global recorder."""
    left = _fill(a)
    left.merge(_fill(b))
    left.merge(_fill(c))
    right = _fill(b)
    right.merge(_fill(c))
    right.merge(_fill(a))
    single = _fill(a + b + c)
    assert left == right == single


@_SETTINGS
@given(values=values_strategy)
def test_to_dict_round_trip(values):
    """Serialisation preserves the merged state (and the sum closely)."""
    sketch = _fill(values)
    clone = QuantileSketch.from_dict(sketch.to_dict())
    assert clone == sketch
    assert clone.sum == pytest.approx(sketch.sum)


def test_zero_values_share_the_zero_bucket():
    """Exact zeros are representable and estimated exactly."""
    sketch = QuantileSketch(0.01)
    for _ in range(3):
        sketch.record(0.0)
    sketch.record(5.0)
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(1.0) == 5.0


def test_merge_rejects_mismatched_alpha():
    """Sketches with different error bounds must not silently merge."""
    with pytest.raises(ValueError):
        _fill([1.0], alpha=0.01).merge(_fill([1.0], alpha=0.05))


def test_negative_values_rejected():
    """Latencies are non-negative; a negative record is a caller bug."""
    with pytest.raises(ValueError):
        QuantileSketch(0.01).record(-1.0)


def test_resolve_sketch_alpha():
    """Env parsing: default, explicit value, and malformed values."""
    assert resolve_sketch_alpha("") == DEFAULT_SKETCH_ALPHA
    assert resolve_sketch_alpha("0.05") == 0.05
    with pytest.raises(ValueError):
        resolve_sketch_alpha("nope")
    with pytest.raises(ValueError):
        resolve_sketch_alpha("1.5")


def test_registry_label_clash_raises():
    """Re-registering with different label names is a hard error."""
    registry = SketchRegistry()
    registry.register("f", "help", ("stage",))
    assert registry.register("f", "help", ("stage",)).name == "f"
    with pytest.raises(ValueError):
        registry.register("f", "help", ("other",))


def test_merge_payloads_deduplicates_by_pid():
    """The same process's payload folds in exactly once."""
    registry = SketchRegistry()
    registry.register("f", "help", ("stage",)).record(1.0, stage="check")
    payload = registry.to_payload()
    merged = merge_payloads([payload, payload, None])
    family = merged.get("f")
    assert family is not None
    assert family.series()[0][1].count == 1
    other = dict(payload, pid=payload["pid"] + 1)
    merged = merge_payloads([payload, other])
    assert merged.get("f").series()[0][1].count == 2


def test_quantile_summary_shape():
    """The rollup keys series by labels with p50..p999 estimates."""
    registry = SketchRegistry()
    family = registry.register("f", "help", ("stage",))
    for value in (0.1, 0.2, 0.3):
        family.record(value, stage="check")
    registry.register("empty", "no recordings")
    summary = quantile_summary(registry)
    assert summary["empty"] == []
    (row,) = summary["f"]
    assert row["labels"] == {"stage": "check"}
    assert row["count"] == 3
    assert 0.1 <= row["p50"] <= 0.3
    assert row["p999"] >= row["p50"]


def _sketch_counts(registry):
    """family -> {label values: count} for comparing merged registries."""
    return {
        family.name: {
            key: sketch.count for key, sketch in family.series()
        }
        for family in registry.families()
        if any(sketch.count for _, sketch in family.series())
    }


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_cluster_merge_equals_union_over_process_transport(backend_name):
    """Coordinator-merged sketches equal the union of shard recordings.

    The same query runs on an inline cluster (single process: the
    "union" ground truth, since every shard records into one registry)
    and on a process-transport cluster (recordings spread across
    worker processes).  The merged per-stage/per-pass counts must be
    identical -- the submit/collect fold loses nothing.
    """
    config = SilkMothConfig(delta=0.3, backend=backend_name)
    with SilkMothCluster.from_sets(DATA, config, shards=2) as cluster:
        cluster.search(["ash bay"])
        cluster.discover()
        inline_counts = _sketch_counts(cluster.merged_sketches())
    reset_sketch_registry()
    with SilkMothCluster.from_sets(
        DATA, config, shards=2, transport="process"
    ) as cluster:
        cluster.search(["ash bay"])
        cluster.discover()
        merged = cluster.merged_sketches()
        remote_counts = _sketch_counts(merged)
        routed = cluster.last_pass.shards_routed
    pass_series = remote_counts.pop("silkmoth_pass_latency_quantile")
    inline_pass = inline_counts.pop("silkmoth_pass_latency_quantile")
    assert pass_series == inline_pass
    assert sum(pass_series.values()) >= routed
    stage_series = remote_counts.pop("silkmoth_stage_latency_quantile")
    inline_stage = inline_counts.pop("silkmoth_stage_latency_quantile")
    assert stage_series == inline_stage
    assert stage_series, "shards recorded no stage latencies"
    # The coordinator also timed its collect waits on the worker pipes.
    waits = remote_counts.pop("silkmoth_transport_wait_quantile")
    assert ("process",) in waits
    inline_counts.pop("silkmoth_transport_wait_quantile", None)
    assert remote_counts == inline_counts
    summary = quantile_summary(merged)
    for row in summary["silkmoth_stage_latency_quantile"]:
        assert row["p50"] is not None


def test_cluster_merged_quantiles_survive_reload(tmp_path):
    """A reloaded process-transport cluster still folds shard sketches."""
    config = SilkMothConfig(delta=0.3)
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(DATA, config, shards=2) as cluster:
        cluster.save(manifest)
    loaded = SilkMothCluster.load(manifest, config, transport="process")
    try:
        loaded.search(["ash bay"])
        counts = _sketch_counts(loaded.merged_sketches())
    finally:
        loaded.close()
    assert "silkmoth_stage_latency_quantile" in counts


def test_get_sketch_registry_is_process_global():
    """Instrument hooks and exporters see one shared registry."""
    assert get_sketch_registry() is get_sketch_registry()
    fresh = reset_sketch_registry()
    assert get_sketch_registry() is fresh
