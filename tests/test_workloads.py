"""Unit tests for the three evaluation workloads (Table 3)."""

import pytest

from repro.core.config import Relatedness
from repro.sim.functions import SimilarityKind
from repro.workloads.applications import (
    WORKLOADS,
    inclusion_dependency,
    schema_matching,
    string_matching,
)


class TestStringMatching:
    def test_configuration_matches_table3(self):
        workload = string_matching(n_sets=50)
        assert workload.config.metric is Relatedness.SIMILARITY
        assert workload.config.similarity is SimilarityKind.EDS
        assert workload.config.delta == 0.7
        assert workload.config.alpha == 0.8
        # Table 3 note: alpha = 0.8 implies q = 3.
        assert workload.config.effective_q == 3

    def test_collection_tokenised_with_qgrams(self):
        workload = string_matching(n_sets=10)
        collection = workload.collection()
        element = collection[0].elements[0]
        assert element.signature_tokens <= element.index_tokens

    def test_elements_per_set(self):
        workload = string_matching(n_sets=20)
        sizes = [len(s) for s in workload.sets]
        assert sum(sizes) / len(sizes) == pytest.approx(9, abs=1)


class TestSchemaMatching:
    def test_configuration_matches_table3(self):
        workload = schema_matching(n_sets=50)
        assert workload.config.metric is Relatedness.SIMILARITY
        assert workload.config.similarity is SimilarityKind.JACCARD
        assert workload.config.alpha == 0.0

    def test_elements_per_set(self):
        workload = schema_matching(n_sets=20)
        assert all(len(s) == 3 for s in workload.sets)


class TestInclusionDependency:
    def test_configuration_matches_table3(self):
        workload = inclusion_dependency(n_sets=50)
        assert workload.config.metric is Relatedness.CONTAINMENT
        assert workload.config.similarity is SimilarityKind.JACCARD
        assert workload.config.alpha == 0.5

    def test_reference_ids_eligible(self):
        workload = inclusion_dependency(n_sets=60, n_references=10)
        refs = workload.reference_ids()
        assert len(refs) == 10
        # Section 8.1: only columns with more than 4 distinct values.
        for ref in refs:
            assert len(set(workload.sets[ref])) > 4

    def test_reference_ids_deterministic(self):
        a = inclusion_dependency(n_sets=60, n_references=10)
        b = inclusion_dependency(n_sets=60, n_references=10)
        assert a.reference_ids() == b.reference_ids()


class TestWorkloadHelpers:
    def test_registry_complete(self):
        assert set(WORKLOADS) == {
            "string_matching",
            "schema_matching",
            "inclusion_dependency",
        }

    def test_with_config_override(self):
        workload = schema_matching(n_sets=10).with_config(delta=0.85)
        assert workload.config.delta == 0.85
        assert workload.name == "schema_matching"

    def test_collection_roundtrip(self):
        workload = schema_matching(n_sets=10)
        collection = workload.collection()
        assert len(collection) == 10
