"""Property tests: no pipeline stage may drop a truly related candidate.

Exactness tests compare end-to-end output against brute force; these
tests pin the *per-stage* invariant instead -- for every truly related
pair, the candidate must (a) share a signature token, (b) pass the
check filter's estimate, and (c) pass the NN filter.  When one of these
fails, the exactness tests only show "a result is missing"; these show
exactly which stage broke its contract.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import EPSILON, SilkMoth, relatedness_value
from repro.core.records import SetCollection
from repro.filters.check import select_and_check
from repro.filters.nearest_neighbor import nearest_neighbor_filter
from repro.matching.score import matching_score
from repro.sim.functions import SimilarityKind
from repro.signatures import SCHEME_NAMES

KINDS = [
    SimilarityKind.JACCARD,
    SimilarityKind.DICE,
    SimilarityKind.COSINE,
]


def _corpus(seed: int, kind: SimilarityKind, n_sets: int = 14):
    rng = random.Random(seed)
    vocab = [f"w{i}" for i in range(9)]
    sets = []
    for _ in range(n_sets):
        sets.append(
            [
                " ".join(rng.sample(vocab, rng.randint(1, 4)))
                for _ in range(rng.randint(1, 4))
            ]
        )
    for i in range(0, n_sets - 1, 3):
        sets[i + 1] = list(sets[i])
    return SetCollection.from_strings(sets, kind=kind)


def _truly_related(engine, reference):
    """Brute-force ground truth for one reference."""
    related = []
    for candidate in engine.collection:
        if candidate.set_id == reference.set_id:
            continue
        score = matching_score(reference, candidate, engine.phi)
        value = relatedness_value(
            engine.config.metric, score, len(reference), len(candidate)
        )
        if value >= engine.config.delta - EPSILON:
            related.append(candidate.set_id)
    return related


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    kind=st.sampled_from(KINDS),
    scheme=st.sampled_from(sorted(SCHEME_NAMES)),
    delta=st.sampled_from([0.5, 0.7]),
    alpha=st.sampled_from([0.0, 0.4]),
)
def test_every_stage_keeps_true_results(seed, kind, scheme, delta, alpha):
    collection = _corpus(seed, kind)
    config = SilkMothConfig(
        metric=Relatedness.SIMILARITY,
        similarity=kind,
        delta=delta,
        alpha=alpha,
        scheme=scheme,
    )
    engine = SilkMoth(collection, config)

    for reference in collection:
        truly = set(_truly_related(engine, reference))
        if not truly:
            continue
        theta = delta * len(reference)
        signature = engine.scheme.generate(
            reference, theta - EPSILON, engine.phi, engine.index
        )
        if signature is None:
            continue  # full-scan mode keeps everything by construction

        # Stage 1+2: candidate selection with the check filter applied.
        infos = select_and_check(
            reference,
            signature,
            engine.index,
            engine.phi,
            theta - EPSILON,
            collection,
            apply_check=True,
            skip_set=reference.set_id,
        )
        surviving = {info.set_id for info in infos}
        assert truly <= surviving, (
            f"check filter dropped {truly - surviving} "
            f"(scheme={scheme}, kind={kind}, delta={delta}, alpha={alpha})"
        )

        # Stage 3: the NN filter on top.
        refined = nearest_neighbor_filter(
            reference,
            infos,
            signature.element_bounds,
            theta - EPSILON,
            engine.index,
            engine.phi,
            collection,
            q=config.effective_q,
        )
        surviving_nn = {info.set_id for info in refined}
        assert truly <= surviving_nn, (
            f"NN filter dropped {truly - surviving_nn} "
            f"(scheme={scheme}, kind={kind}, delta={delta}, alpha={alpha})"
        )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    delta=st.sampled_from([0.6, 0.8]),
)
def test_containment_stages_keep_true_results(seed, delta):
    collection = _corpus(seed, SimilarityKind.JACCARD)
    config = SilkMothConfig(
        metric=Relatedness.CONTAINMENT, delta=delta, scheme="dichotomy"
    )
    engine = SilkMoth(collection, config)
    for reference in collection:
        truly = set(_truly_related(engine, reference))
        got = {
            r.set_id for r in engine.search(reference, skip_set=reference.set_id)
        }
        assert got == truly


class TestFilterMonotonicity:
    """More filters on => never more verified candidates, same matches."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_funnel_is_monotone(self, kind):
        collection = _corpus(3, kind, n_sets=20)
        base = dict(
            metric=Relatedness.SIMILARITY, similarity=kind, delta=0.6
        )
        configs = [
            SilkMothConfig(**base, check_filter=False, nn_filter=False),
            SilkMothConfig(**base, check_filter=True, nn_filter=False),
            SilkMothConfig(**base, check_filter=True, nn_filter=True),
        ]
        verified = []
        matches = []
        for config in configs:
            engine = SilkMoth(collection, config)
            results = engine.discover()
            verified.append(engine.stats.verified)
            matches.append(sorted((r.reference_id, r.set_id) for r in results))
        assert verified[0] >= verified[1] >= verified[2]
        assert matches[0] == matches[1] == matches[2]
