"""Partitioned discovery must equal in-memory discovery exactly."""

import random

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.partitioned import iter_partitions, partitioned_discover
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind


def _random_sets(rng, n_sets, vocab_size=10):
    vocab = [f"w{i}" for i in range(vocab_size)]
    sets = []
    for _ in range(n_sets):
        sets.append(
            [
                " ".join(rng.sample(vocab, rng.randint(1, 4)))
                for _ in range(rng.randint(1, 4))
            ]
        )
    for i in range(0, n_sets - 1, 3):
        sets[i + 1] = list(sets[i])
    return sets


def _serial(sets, config, reference_sets=None):
    collection = SetCollection.from_strings(
        sets, kind=config.similarity, q=config.effective_q
    )
    engine = SilkMoth(collection, config)
    if reference_sets is None:
        return engine.discover()
    references = engine.reference_collection(reference_sets)
    return engine.discover(references)


def _keys(results):
    return [(r.reference_id, r.set_id, round(r.score, 9)) for r in results]


class TestIterPartitions:
    def test_covers_everything_in_order(self):
        sets = [[str(i)] for i in range(10)]
        chunks = list(iter_partitions(sets, 3))
        assert [offset for offset, _ in chunks] == [0, 3, 6, 9]
        rebuilt = [s for _, chunk in chunks for s in chunk]
        assert rebuilt == sets

    def test_exact_division(self):
        sets = [[str(i)] for i in range(6)]
        chunks = list(iter_partitions(sets, 3))
        assert len(chunks) == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(iter_partitions([["a"]], 0))


class TestPartitionedEqualsInMemory:
    @pytest.mark.parametrize("partition_size", [1, 3, 7, 100])
    def test_self_discovery_similarity(self, partition_size):
        rng = random.Random(81)
        sets = _random_sets(rng, 21)
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.6)
        expected = _serial(sets, config)
        got = partitioned_discover(sets, config, partition_size=partition_size)
        assert _keys(got) == _keys(expected)

    @pytest.mark.parametrize("partition_size", [2, 5])
    def test_self_discovery_containment(self, partition_size):
        rng = random.Random(82)
        sets = _random_sets(rng, 18)
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.7)
        expected = _serial(sets, config)
        got = partitioned_discover(sets, config, partition_size=partition_size)
        assert _keys(got) == _keys(expected)

    def test_cross_collection(self):
        rng = random.Random(83)
        sets = _random_sets(rng, 16)
        references = _random_sets(rng, 5)
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.5)
        expected = _serial(sets, config, references)
        got = partitioned_discover(
            sets, config, partition_size=4, reference_sets=references
        )
        assert _keys(got) == _keys(expected)

    def test_edit_similarity(self):
        rng = random.Random(84)
        words = ["matching", "signature", "filtering"]
        sets = [
            [rng.choice(words) for _ in range(rng.randint(1, 3))]
            for _ in range(12)
        ]
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS, delta=0.7, alpha=0.8
        )
        expected = _serial(sets, config)
        got = partitioned_discover(sets, config, partition_size=5)
        assert _keys(got) == _keys(expected)

    def test_default_partition_size(self):
        rng = random.Random(85)
        sets = _random_sets(rng, 20)
        config = SilkMothConfig(delta=0.6)
        expected = _serial(sets, config)
        got = partitioned_discover(sets, config)
        assert _keys(got) == _keys(expected)

    def test_empty_input(self):
        assert partitioned_discover([], SilkMothConfig(delta=0.7)) == []
