"""The auto-calibration loop: live traffic re-calibrates the planner.

Exercises the acceptance story end to end: a service whose sampler
fires on live passes, exports a ``SILKMOTH_COST_PROFILE``-compatible
profile and feeds ``replan(measured=...)`` directly -- with the env
var never set -- plus the cluster variant where the coordinator
samples shard-summed timings and broadcasts a ``replan`` command.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import SilkMothCluster
from repro.cluster.shard import ShardHost
from repro.core.config import SilkMothConfig
from repro.core.stats import PassStats
from repro.obs.autocal import (
    AUTOCAL_ENV,
    AUTOCAL_SOURCE,
    AutoCalibrator,
    derive_measured_costs,
    resolve_autocal_interval,
)
from repro.core.records import SetCollection
from repro.planner.cost import MEASURED_COSTS_ENV_VAR, load_measured_costs
from repro.service import ServiceStats, SilkMothService

DATA = [
    ["apple pie", "apple tart"],
    ["apple pie", "apple strudel"],
    ["banana split", "banana bread"],
    ["cherry pie", "cherry cola"],
]


def _service(config: SilkMothConfig, **kwargs) -> SilkMothService:
    collection = SetCollection.from_strings(
        DATA, kind=config.similarity, q=config.effective_q
    )
    return SilkMothService(config, collection, **kwargs)


@pytest.fixture(autouse=True)
def no_cost_profile_env(monkeypatch):
    """The whole point: calibration works without the env var."""
    monkeypatch.delenv(MEASURED_COSTS_ENV_VAR, raising=False)
    monkeypatch.delenv(AUTOCAL_ENV, raising=False)


def _two_backend_stats() -> ServiceStats:
    stats = ServiceStats()
    stats.record_pass(
        PassStats(backend="python", stage_seconds={"verify": 0.2})
    )
    stats.record_pass(
        PassStats(backend="numpy", stage_seconds={"verify": 0.1})
    )
    return stats


class TestResolveInterval:
    def test_default_is_disabled(self):
        assert resolve_autocal_interval() == 0

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(AUTOCAL_ENV, "25")
        assert resolve_autocal_interval() == 25

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(AUTOCAL_ENV, "25")
        assert resolve_autocal_interval(3) == 3

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv(AUTOCAL_ENV, "often")
        with pytest.raises(ValueError):
            resolve_autocal_interval()

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_autocal_interval(-1)


class TestDeriveMeasuredCosts:
    def test_single_backend_has_no_signal(self):
        stats = ServiceStats()
        stats.record_pass(
            PassStats(backend="python", stage_seconds={"verify": 0.2})
        )
        assert derive_measured_costs(stats) is None

    def test_two_backends_yield_mean_per_pass(self):
        stats = _two_backend_stats()
        stats.record_pass(
            PassStats(backend="python", stage_seconds={"verify": 0.4})
        )
        costs = derive_measured_costs(stats)
        assert costs.source == AUTOCAL_SOURCE
        assert costs.backend_seconds["python"] == pytest.approx(0.3)
        assert costs.backend_seconds["numpy"] == pytest.approx(0.1)


class TestAutoCalibrator:
    def test_disabled_never_fires(self):
        sampler = AutoCalibrator(0)
        stats = _two_backend_stats()
        assert all(sampler.observe(stats) is None for _ in range(10))
        assert sampler.samples == 0

    def test_fires_every_interval_and_resets(self):
        sampler = AutoCalibrator(3)
        stats = _two_backend_stats()
        fired = [sampler.observe(stats) is not None for _ in range(9)]
        assert fired == [False, False, True] * 3
        assert sampler.samples == 3

    def test_holds_fire_without_comparative_signal(self):
        sampler = AutoCalibrator(1)
        stats = ServiceStats()
        stats.record_pass(
            PassStats(backend="python", stage_seconds={"verify": 0.2})
        )
        assert sampler.observe(stats) is None
        assert sampler.samples == 0

    def test_export_path_writes_loadable_profile(self, tmp_path):
        path = tmp_path / "autocal.json"
        sampler = AutoCalibrator(1, export_path=path)
        assert sampler.observe(_two_backend_stats()) is not None
        measured = load_measured_costs(str(path))
        assert measured.backend_seconds["python"] == pytest.approx(0.2)
        assert measured.backend_seconds["numpy"] == pytest.approx(0.1)


class TestServiceLoop:
    def test_sampler_exports_and_replans_from_live_traffic(self, tmp_path):
        path = tmp_path / "autocal.json"
        service = _service(
            SilkMothConfig(delta=0.3),
            autocal_interval=1,
            autocal_export_path=path,
        )
        # Live passes run one backend; seed a second so the sampler
        # has the comparative signal it refuses to act without.
        service.stats.record_pass(
            PassStats(backend="numpy", stage_seconds={"verify": 99.0})
        )
        before = service.search(["apple pie", "apple tart"])
        assert service.autocal.samples >= 1
        # The export is SILKMOTH_COST_PROFILE-compatible -- but nothing
        # here ever set that env var (autouse fixture deletes it).
        measured = load_measured_costs(str(path))
        assert "python" in measured.backend_seconds
        assert "numpy" in measured.backend_seconds
        # Re-planning under live costs never changes answers.
        after = service.search(["apple pie", "apple tart"])
        assert [(r.set_id, r.score) for r in before] == [
            (r.set_id, r.score) for r in after
        ]

    def test_replan_consumed_the_measured_costs(self):
        pytest.importorskip("numpy")
        service = _service(SilkMothConfig(delta=0.3), autocal_interval=1)
        # Make the seeded numpy timing absurdly slow: the measured
        # decision must name python and cite the sampler as source.
        service.stats.record_pass(
            PassStats(backend="numpy", stage_seconds={"verify": 99.0})
        )
        service.search(["apple pie", "apple tart"])
        decision = service.engine.decision
        assert decision.backend == "python"
        assert any(AUTOCAL_SOURCE in reason for reason in decision.reasons)

    def test_interval_zero_leaves_planner_untouched(self):
        service = _service(SilkMothConfig(delta=0.3))
        assert not service.autocal.enabled
        service.search(["apple pie", "apple tart"])
        assert service.autocal.samples == 0


class TestClusterLoop:
    def test_coordinator_samples_and_exports_merged_profile(self, tmp_path):
        path = tmp_path / "cluster_autocal.json"
        with SilkMothCluster.from_sets(
            DATA,
            SilkMothConfig(delta=0.3),
            shards=2,
            transport="inline",
            autocal_interval=1,
            autocal_export_path=path,
        ) as cluster:
            cluster.stats.record_pass(
                PassStats(backend="numpy", stage_seconds={"verify": 99.0})
            )
            cluster.search(["apple pie", "apple tart"])
            assert cluster.autocal.samples >= 1
            payload = json.loads(path.read_text())
            # The cluster export carries the merged shard index profile
            # next to the standard calibration sections.
            assert "index_profile" in payload
            assert load_measured_costs(str(path)) is not None

    def test_shards_adopt_broadcast_timings(self):
        pytest.importorskip("numpy")
        with SilkMothCluster.from_sets(
            DATA,
            SilkMothConfig(delta=0.3),
            shards=2,
            transport="inline",
            autocal_interval=1,
        ) as cluster:
            cluster.stats.record_pass(
                PassStats(backend="numpy", stage_seconds={"verify": 99.0})
            )
            cluster.search(["apple pie", "apple tart"])
            for info in cluster.shard_infos():
                decision = info["decision"]
                assert decision["backend"] == "python"

    def test_shard_replan_command_returns_backend(self):
        host = ShardHost(SilkMothConfig(delta=0.3), DATA)
        backend = host.handle(
            "replan", ({"python": 0.1, "numpy": 99.0},)
        )
        assert backend in ("python", "numpy")
        pytest.importorskip("numpy")
        assert backend == "python"
