"""Property-based exactness: the staged pipeline equals brute force.

The core claim of the paper (and of the refactor) in one property: for
*any* collection, reference and configuration, the pipeline returns
exactly the brute-force related sets -- on every compute backend.  The
numpy cases skip automatically when numpy is not installed.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings

from repro.backends import available_backends
from repro.baselines.brute_force import brute_force_search
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from strategies import (
    collections,
    edit_configs,
    string_collections,
    string_sets,
    token_configs,
    token_sets,
)

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} backend unavailable"),
    )
    for name in ("python", "numpy")
]

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_exact(sets, reference_elements, config) -> None:
    collection = SetCollection.from_strings(
        sets, kind=config.similarity, q=config.effective_q
    )
    engine = SilkMoth(collection, config)
    reference = engine.reference_collection([reference_elements])[0]
    got = engine.search(reference)
    expected = brute_force_search(reference, collection, config)
    assert [r.set_id for r in got] == [r.set_id for r in expected]
    for mine, oracle in zip(got, expected):
        assert mine.score == pytest.approx(oracle.score, abs=1e-9)
        assert mine.relatedness == pytest.approx(oracle.relatedness, abs=1e-9)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestPipelineExactness:
    @_SETTINGS
    @given(sets=collections(), reference=token_sets(), config=token_configs())
    def test_token_kinds_match_brute_force(
        self, backend_name, sets, reference, config
    ):
        _assert_exact(sets, reference, replace(config, backend=backend_name))

    @_SETTINGS
    @given(
        sets=string_collections(),
        reference=string_sets(),
        config=edit_configs(),
    )
    def test_edit_kinds_match_brute_force(
        self, backend_name, sets, reference, config
    ):
        _assert_exact(sets, reference, replace(config, backend=backend_name))
