"""Cluster exactness: shard + route + merge equals the single node.

The tentpole claim in test form: a :class:`repro.SilkMothCluster` is
observably identical to the single-node engine/service on the same
data -- for any dataset, configuration and shard count, under search,
discovery *and* arbitrary mutation sequences, on every compute
backend.  Scores are compared exactly (not approximately): shard
passes run the very same pipeline kernels on the very same element
pairs, so even the floats must agree bit for bit.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.cluster import SilkMothCluster
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.service import SilkMothService
from strategies import (
    collections,
    edit_configs,
    string_collections,
    string_sets,
    token_configs,
    token_sets,
)

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} backend unavailable"),
    )
    for name in ("python", "numpy")
]

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _single_node_search(sets, reference_elements, config):
    collection = SetCollection.from_strings(
        sets, kind=config.similarity, q=config.effective_q
    )
    engine = SilkMoth(collection, config)
    reference = collection.query_set(reference_elements)
    return engine.search(reference)


def _assert_cluster_matches_engine(sets, reference_elements, config, shards):
    expected = _single_node_search(sets, reference_elements, config)
    with SilkMothCluster.from_sets(sets, config, shards=shards) as cluster:
        got = cluster.search(reference_elements)
    assert [(r.set_id, r.score, r.relatedness) for r in got] == [
        (r.set_id, r.score, r.relatedness) for r in expected
    ]


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(
    sets=collections(min_sets=1, max_sets=7),
    reference=token_sets(),
    config=token_configs(),
    shards=st.integers(min_value=1, max_value=4),
)
@_SETTINGS
def test_cluster_search_identity_token_kinds(
    backend_name, sets, reference, config, shards
):
    """Token-kind cluster search == single-node search, bit for bit."""
    _assert_cluster_matches_engine(
        sets, reference, replace(config, backend=backend_name), shards
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(
    sets=string_collections(min_sets=1, max_sets=5),
    reference=string_sets(),
    config=edit_configs(),
    shards=st.integers(min_value=1, max_value=3),
)
@_SETTINGS
def test_cluster_search_identity_edit_kinds(
    backend_name, sets, reference, config, shards
):
    """Edit-kind cluster search == single-node search, for every q.

    Out-of-constraint q values are included: routing then degrades to
    broadcast (no pair certificate) and must still be exact.
    """
    _assert_cluster_matches_engine(
        sets, reference, replace(config, backend=backend_name), shards
    )


@given(
    sets=collections(min_sets=1, max_sets=7),
    config=token_configs(),
    shards=st.integers(min_value=1, max_value=4),
)
@_SETTINGS
def test_cluster_discovery_identity(sets, config, shards):
    """Cluster self-discovery == engine self-discovery (rows + order)."""
    collection = SetCollection.from_strings(
        sets, kind=config.similarity, q=config.effective_q
    )
    expected = SilkMoth(collection, config).discover()
    with SilkMothCluster.from_sets(sets, config, shards=shards) as cluster:
        got = cluster.discover()
    assert got == expected


@given(
    sets=string_collections(min_sets=1, max_sets=4),
    config=edit_configs(),
    shards=st.integers(min_value=1, max_value=3),
)
@_SETTINGS
def test_cluster_discovery_identity_edit_kinds(sets, config, shards):
    """Edit-kind cluster discovery == engine discovery, for every q."""
    collection = SetCollection.from_strings(
        sets, kind=config.similarity, q=config.effective_q
    )
    expected = SilkMoth(collection, config).discover()
    with SilkMothCluster.from_sets(sets, config, shards=shards) as cluster:
        got = cluster.discover()
    assert got == expected


#: One mutation step: add a set, remove by (index into live ids), or
#: update likewise.  Indices are resolved against the live ids at
#: application time so every generated program is valid by construction.
_mutations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), token_sets()),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=30)),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=30),
            token_sets(),
        ),
    ),
    min_size=0,
    max_size=8,
)


def _apply_mutations(target, mutations):
    """Apply a mutation program, resolving indices to live ids."""
    for step in mutations:
        live = target.live_set_ids()
        if step[0] == "add":
            target.add_set(step[1])
        elif step[0] == "remove":
            if live:
                target.remove_set(live[step[1] % len(live)])
        else:
            if live:
                target.update_set(live[step[1] % len(live)], step[2])


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(
    sets=collections(min_sets=1, max_sets=5),
    mutations=_mutations,
    reference=token_sets(),
    config=token_configs(),
    shards=st.integers(min_value=1, max_value=3),
)
@_SETTINGS
def test_cluster_identity_under_mutation(
    backend_name, sets, mutations, reference, config, shards
):
    """Same mutation program => same ids and same answers as the service."""
    config = replace(config, backend=backend_name, scheme="dichotomy")
    service = SilkMothService(config)
    for elements in sets:
        service.add_set(elements)
    with SilkMothCluster.from_sets(sets, config, shards=shards) as cluster:
        _apply_mutations(service, mutations)
        _apply_mutations(cluster, mutations)
        assert cluster.live_set_ids() == service.live_set_ids()
        assert cluster.search(reference) == service.search(reference)
        # Compaction + rebalancing must be observably invisible.
        cluster.compact()
        assert cluster.search(reference) == service.search(reference)


def test_add_returns_global_ids_in_sequence():
    """Global ids are append-only and match single-node numbering."""
    from repro.core.config import SilkMothConfig

    with SilkMothCluster(SilkMothConfig(), shards=3) as cluster:
        assert cluster.add_set(["a b"]) == 0
        assert cluster.add_set(["c d"]) == 1
        assert cluster.remove_set(1) is None
        assert cluster.add_set(["e"]) == 2
        assert cluster.update_set(0, ["f"]) == 3
        assert cluster.live_set_ids() == [2, 3]
        assert cluster.total_sets == 4
        assert len(cluster) == 2


def test_mutating_dead_ids_raises():
    """Removing/updating a tombstoned or unknown id is a KeyError."""
    from repro.core.config import SilkMothConfig

    with SilkMothCluster(SilkMothConfig(), shards=2) as cluster:
        cluster.add_set(["a"])
        cluster.remove_set(0)
        with pytest.raises(KeyError):
            cluster.remove_set(0)
        with pytest.raises(KeyError):
            cluster.update_set(0, ["b"])
        with pytest.raises(KeyError):
            cluster.remove_set(99)


def test_empty_reference_answers_without_fanout():
    """An empty reference returns [] and touches no shard."""
    from repro.core.config import SilkMothConfig

    with SilkMothCluster.from_sets(
        [["a b"], ["c"]], SilkMothConfig(), shards=2
    ) as cluster:
        assert cluster.search([]) == []
        assert cluster.last_pass.shards_routed == 0


def test_cluster_cache_and_generation():
    """Hot references hit the cluster cache; mutations invalidate it."""
    from repro.core.config import SilkMothConfig

    with SilkMothCluster.from_sets(
        [["a b"], ["a c"]], SilkMothConfig(delta=0.3), shards=2
    ) as cluster:
        first = cluster.search(["a b"])
        assert cluster.stats.cache_misses == 1
        again = cluster.search(["a b"])
        assert again == first
        assert cluster.stats.cache_hits == 1
        cluster.add_set(["a b"])
        after = cluster.search(["a b"])
        assert cluster.stats.cache_misses == 2
        assert len(after) == len(first) + 1


def test_search_many_deduplicates_and_caches():
    """Batch answers mirror the service's dedup/cache accounting."""
    from repro.core.config import SilkMothConfig

    with SilkMothCluster.from_sets(
        [["a b"], ["a c"], ["d"]], SilkMothConfig(delta=0.3), shards=2
    ) as cluster:
        batch = [["a b"], ["a b"], ["d"]]
        answers = cluster.search_many(batch)
        assert answers[0] == answers[1]
        assert cluster.stats.batch_queries_deduplicated == 1
        assert cluster.stats.batches == 1
        again = cluster.search_many(batch)
        assert again == answers
        assert cluster.stats.cache_hits >= 2


def test_rebalance_evens_out_shards():
    """Removing one shard's sets then compacting rebalances placement."""
    from repro.core.config import SilkMothConfig

    sets = [[f"w{i} common"] for i in range(12)]
    with SilkMothCluster.from_sets(
        sets, SilkMothConfig(delta=0.2), shards=3
    ) as cluster:
        # Round-robin placement: shard 0 holds global ids 0, 3, 6, 9.
        for gid in (0, 3, 6, 9):
            cluster.remove_set(gid)
        before = cluster.search(["common w1"])
        moves = cluster.rebalance()
        assert moves > 0
        assert cluster.stats.rebalance_moves == moves
        info_live = cluster.info()["shard_live_sets"]
        assert max(info_live) - min(info_live) <= 1
        assert cluster.search(["common w1"]) == before


def test_cluster_run_stats_aggregate_funnel():
    """Merged pass counters accumulate into the cluster's RunStats."""
    from repro.core.config import SilkMothConfig

    with SilkMothCluster.from_sets(
        [["a b"], ["a c"], ["x y"]], SilkMothConfig(delta=0.3), shards=2
    ) as cluster:
        cluster.search(["a b"])
        assert cluster.run_stats.passes == 1
        assert cluster.run_stats.matches >= 1
        assert cluster.last_pass.merged.matches >= 1
        assert cluster.last_pass.shards_total == 2


def test_shard_count_knob_resolution(monkeypatch):
    """SILKMOTH_SHARDS supplies the default shard count."""
    from repro.cluster.coordinator import resolve_shard_count

    monkeypatch.delenv("SILKMOTH_SHARDS", raising=False)
    assert resolve_shard_count(None) == 4
    assert resolve_shard_count(2) == 2
    monkeypatch.setenv("SILKMOTH_SHARDS", "7")
    assert resolve_shard_count(None) == 7
    with pytest.raises(ValueError):
        resolve_shard_count(0)


def test_from_sets_rejects_unknown_kwargs_before_spawning():
    """A typoed keyword fails fast, before any worker could leak."""
    from repro.core.config import SilkMothConfig

    with pytest.raises(TypeError) as excinfo:
        SilkMothCluster.from_sets(
            [["a"]], SilkMothConfig(), shards=1, cache_cap=64
        )
    assert "cache_cap" in str(excinfo.value)


def test_closed_cluster_refuses_work():
    """Operations after close() fail loudly, not with hangs."""
    from repro.core.config import SilkMothConfig

    cluster = SilkMothCluster.from_sets([["a"]], SilkMothConfig(), shards=1)
    cluster.close()
    cluster.close()  # idempotent
    with pytest.raises(RuntimeError):
        cluster.search(["a"])
    with pytest.raises(RuntimeError):
        cluster.add_set(["b"])
