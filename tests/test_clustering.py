"""Union-find and cluster extraction over discovery output."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import UnionFind, cluster_related_sets, representatives
from repro.core.config import SilkMothConfig
from repro.core.engine import DiscoveryResult, SilkMoth
from repro.core.records import SetCollection


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert len(uf.groups()) == 4

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) != uf.find(0)

    def test_union_idempotent(self):
        uf = UnionFind(3)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_transitive_merge(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)

    def test_groups_sorted(self):
        uf = UnionFind(6)
        uf.union(5, 3)
        uf.union(0, 4)
        groups = uf.groups()
        assert groups == [[0, 4], [1], [2], [3, 5]]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_groups_partition(self, edges):
        uf = UnionFind(20)
        for a, b in edges:
            uf.union(a, b)
        groups = uf.groups()
        flat = sorted(x for group in groups for x in group)
        assert flat == list(range(20))
        # Every edge's endpoints are in the same group.
        membership = {}
        for i, group in enumerate(groups):
            for x in group:
                membership[x] = i
        for a, b in edges:
            assert membership[a] == membership[b]


class TestClusterRelatedSets:
    def test_basic_components(self):
        pairs = [(0, 1), (1, 2), (4, 5)]
        clusters = cluster_related_sets(pairs, n_sets=7)
        assert clusters == [[0, 1, 2], [4, 5]]

    def test_singletons_optional(self):
        pairs = [(0, 1)]
        with_single = cluster_related_sets(
            pairs, n_sets=3, include_singletons=True
        )
        assert with_single == [[0, 1], [2]]

    def test_accepts_discovery_results(self):
        pairs = [
            DiscoveryResult(reference_id=0, set_id=2, score=1.0, relatedness=0.8)
        ]
        assert cluster_related_sets(pairs, n_sets=3) == [[0, 2]]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cluster_related_sets([(0, 5)], n_sets=3)

    def test_empty_pairs(self):
        assert cluster_related_sets([], n_sets=4) == []

    def test_end_to_end_with_engine(self):
        sets = [["x y z"], ["x y z"], ["x y w"], ["p q"], ["p q"], ["solo"]]
        collection = SetCollection.from_strings(sets)
        engine = SilkMoth(collection, SilkMothConfig(delta=0.6))
        pairs = engine.discover()
        clusters = cluster_related_sets(pairs, n_sets=len(sets))
        assert [0, 1] == clusters[0][:2]  # the identical pair clusters
        assert [3, 4] in clusters
        assert all(5 not in cluster for cluster in clusters)


class TestRepresentatives:
    def test_smallest_id_default(self):
        assert representatives([[3, 1, 2], [5, 4]]) == [1, 4]

    def test_largest_by_size(self):
        sizes = [1, 9, 5, 2, 2]
        assert representatives([[0, 1, 2], [3, 4]], sizes) == [1, 3]

    def test_size_tie_prefers_smaller_id(self):
        sizes = [4, 4]
        assert representatives([[0, 1]], sizes) == [0]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            representatives([[]])
