"""Tests for the brute-force oracle and the FastJoin-style baseline."""

import random

import pytest

from repro.baselines.brute_force import brute_force_discover, brute_force_search
from repro.baselines.fastjoin import FastJoinBaseline
from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind


def _edit_collection(seed=5, n=14):
    rng = random.Random(seed)
    words = ["silkmoth", "matching", "related", "signature"]
    sets = []
    for _ in range(n):
        elements = []
        for _ in range(rng.randint(1, 3)):
            word = rng.choice(words)
            if rng.random() < 0.5:
                chars = list(word)
                chars[rng.randrange(len(chars))] = rng.choice("xyz")
                word = "".join(chars)
            elements.append(word)
        sets.append(elements)
    return sets


class TestBruteForce:
    def test_search_symmetric_with_discover(self):
        sets = [["a b", "c d"], ["a b", "c e"], ["x y"]]
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.5)
        pairs = brute_force_discover(collection, config)
        keys = {(p.reference_id, p.set_id) for p in pairs}
        assert (0, 1) in keys
        assert all(r < s for r, s in keys)

    def test_search_skip_set(self):
        sets = [["a b"], ["a b"]]
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.9)
        results = brute_force_search(collection[0], collection, config, skip_set=0)
        assert [r.set_id for r in results] == [1]

    def test_empty_reference(self):
        collection = SetCollection.from_strings([["a"]])
        config = SilkMothConfig(delta=0.5)
        sibling = collection.sibling()
        empty = sibling.add_set([])
        assert brute_force_search(empty, collection, config) == []

    def test_containment_discovery_is_directional(self):
        # A strict superset contains the subset, not vice versa.
        sets = [["a b", "c d", "e f", "g h"], ["a b", "c d"]]
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.99)
        pairs = brute_force_discover(collection, config)
        keys = {(p.reference_id, p.set_id) for p in pairs}
        assert (1, 0) in keys  # set1 is contained in set0
        assert (0, 1) not in keys


class TestFastJoinBaseline:
    def test_rejects_containment(self):
        sets = _edit_collection()
        config = SilkMothConfig(
            metric=Relatedness.CONTAINMENT,
            similarity=SimilarityKind.EDS,
            delta=0.7,
            alpha=0.8,
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=config.effective_q
        )
        with pytest.raises(ValueError):
            FastJoinBaseline(collection, config)

    def test_rejects_jaccard(self):
        collection = SetCollection.from_strings([["a b"]])
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.7)
        with pytest.raises(ValueError):
            FastJoinBaseline(collection, config)

    def test_same_output_as_silkmoth(self):
        sets = _edit_collection()
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=SimilarityKind.EDS,
            delta=0.6,
            alpha=0.7,
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=config.effective_q
        )
        fastjoin = FastJoinBaseline(collection, config)
        silkmoth = SilkMoth(collection, config)
        fj_pairs = sorted((p.reference_id, p.set_id) for p in fastjoin.discover())
        sm_pairs = sorted((p.reference_id, p.set_id) for p in silkmoth.discover())
        assert fj_pairs == sm_pairs

    def test_examines_at_least_as_many_candidates(self):
        # The whole point: FastJoin verifies more candidates than
        # SilkMoth with filters enabled.
        sets = _edit_collection(seed=8, n=30)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=SimilarityKind.EDS,
            delta=0.6,
            alpha=0.7,
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=config.effective_q
        )
        fastjoin = FastJoinBaseline(collection, config)
        fastjoin.discover()
        silkmoth = SilkMoth(collection, config)
        silkmoth.discover()
        assert fastjoin.stats.verified >= silkmoth.stats.verified

    def test_config_is_forced(self):
        sets = _edit_collection()
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=SimilarityKind.EDS,
            delta=0.6,
            alpha=0.7,
            scheme="dichotomy",
            check_filter=True,
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=config.effective_q
        )
        fastjoin = FastJoinBaseline(collection, config)
        assert fastjoin.config.scheme == "comb_unweighted"
        assert not fastjoin.config.check_filter
        assert not fastjoin.config.nn_filter
