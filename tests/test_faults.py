"""Chaos suites: deterministic fault injection against the cluster.

Three layers of coverage:

1. **plan mechanics** -- seeded :class:`FaultPlan` schedules are
   replayable, match operations conjunctively, and fire each event
   exactly once on the right protocol phase;
2. **single-fault semantics** -- each transport-level fault kind
   (crash, hang, lost reply, tail latency) surfaces exactly as its
   real-world counterpart would, and the coordinator's failover
   machinery reacts identically to all of the desynchronising ones;
3. **chaos storms** -- whole mutation programs replayed under seeded
   fault schedules, asserting the acceptance bar: with a replica
   surviving per shard the answers stay bit-identical to the
   single-node oracle, and with a shard lost the failure is a typed
   :class:`ClusterDegradedError` naming it.

The fixed-seed storm below doubles as the CI ``chaos-smoke`` leg: it
runs on the *process* transport (real worker deaths) and appends its
fault schedule + firing log to ``$SILKMOTH_CHAOS_LOG`` when set, which
CI uploads as an artifact.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    FAULT_KINDS,
    ClusterDegradedError,
    FaultEvent,
    FaultPlan,
    FaultyTransport,
    ShardTimeoutError,
    ShardTransportError,
    SilkMothCluster,
)
from repro.cluster.transport import make_transport
from repro.core.config import SilkMothConfig
from strategies import token_sets

CONFIG = SilkMothConfig(delta=0.3)

DATA = [
    ["ash bay common", "elm fir"],
    ["ash bay elm common", "oak"],
    ["sky yew common", "ivy"],
    ["ash common", "fir elm"],
    ["oak sky common", ""],
    ["bay fir common", "yew"],
]

BROAD_REFERENCE = ["ash bay common", "oak sky common"]

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Plan mechanics
# ----------------------------------------------------------------------
def test_fault_event_validates_kind_and_after():
    """Schedule entries are validated at construction time."""
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent(kind="gamma_ray")
    with pytest.raises(ValueError, match="1-based"):
        FaultEvent(kind="hang", after=0)
    assert set(FAULT_KINDS) == {
        "kill_shard",
        "hang",
        "drop_reply",
        "slow_collect",
        "corrupt_snapshot",
    }


def test_random_plans_replay_identically():
    """Same seed, same parameters => byte-identical schedule."""
    kwargs = dict(shards=3, replicas=2, n_events=6, max_after=9)
    first = FaultPlan.random(99, **kwargs)
    second = FaultPlan.random(99, **kwargs)
    assert first.to_dict() == second.to_dict()
    assert first.seed == 99
    assert len(first.events) == 6
    other = FaultPlan.random(100, **kwargs)
    assert other.to_dict() != first.to_dict()


def test_events_fire_on_the_matching_phase_and_count():
    """kill fires at submit, collect-side kinds at collect; `after`
    counts only matching operations; each event fires once."""
    plan = FaultPlan(
        [
            FaultEvent(kind="kill_shard", shard=1, command="add", after=2),
            FaultEvent(kind="drop_reply", shard=0, after=1),
        ]
    )
    # Non-matching shard/command ops leave the kill event un-armed.
    assert plan.on_operation("submit", 0, 0, "add") is None
    assert plan.on_operation("submit", 1, 0, "search") is None
    assert plan.on_operation("submit", 1, 0, "add") is None  # seen=1 < 2
    fired = plan.on_operation("submit", 1, 0, "add")
    assert fired is not None and fired.kind == "kill_shard"
    # A fired event never fires again.
    assert plan.on_operation("submit", 1, 0, "add") is None
    # Collect-side event ignores submits entirely.
    assert plan.on_operation("submit", 0, 0, "search") is None
    fired = plan.on_operation("collect", 0, 0, "search")
    assert fired is not None and fired.kind == "drop_reply"
    assert [entry["kind"] for entry in plan.fired_events()] == [
        "kill_shard",
        "drop_reply",
    ]


def test_quiesce_disarms_remaining_events():
    """quiesce() stops the storm so the post-chaos audit runs clean."""
    plan = FaultPlan(
        [
            FaultEvent(kind="hang", after=1),
            FaultEvent(kind="drop_reply", after=1),
        ]
    )
    assert plan.on_operation("collect", 0, 0, "search") is not None
    assert plan.quiesce() == 1
    assert plan.on_operation("collect", 0, 0, "search") is None


def test_plan_log_is_jsonl_serialisable(tmp_path):
    """write_log appends one JSON object per plan, with the firings."""
    log_path = tmp_path / "chaos.jsonl"
    plan = FaultPlan([FaultEvent(kind="hang", after=1)], seed=7)
    plan.on_operation("collect", 2, 1, "search")
    plan.write_log(log_path)
    plan.write_log(log_path)  # append, not truncate
    lines = log_path.read_text().splitlines()
    assert len(lines) == 2
    payload = json.loads(lines[0])
    assert payload["seed"] == 7
    assert payload["fired"][0]["hit_shard"] == 2
    assert payload["fired"][0]["hit_command"] == "search"


# ----------------------------------------------------------------------
# Single-fault semantics at the transport boundary
# ----------------------------------------------------------------------
def _wrapped(plan, transport="inline"):
    inner = make_transport(transport, CONFIG, [("ash",)])
    return FaultyTransport(inner, plan, shard=0, replica=0)


def test_kill_shard_dies_at_submit_and_stays_dead():
    """kill_shard: the worker dies before handling the command."""
    endpoint = _wrapped(
        FaultPlan([FaultEvent(kind="kill_shard", after=2)])
    )
    assert endpoint.request("ping") == "pong"
    with pytest.raises(ShardTransportError, match="kill_shard"):
        endpoint.submit("ping", ())
    # The endpoint is permanently dead, like a real crashed worker.
    with pytest.raises(ShardTransportError):
        endpoint.submit("ping", ())
    with pytest.raises(ShardTransportError):
        endpoint.collect()
    endpoint.close()


def test_hang_surfaces_as_timeout():
    """hang: the reply never arrives; collect raises the timeout type."""
    endpoint = _wrapped(FaultPlan([FaultEvent(kind="hang", after=1)]))
    endpoint.submit("ping", ())
    with pytest.raises(ShardTimeoutError, match="hang"):
        endpoint.collect(timeout=0.1)
    endpoint.close()


def test_drop_reply_kills_the_desynchronised_connection():
    """drop_reply: a lost reply can never be waited out -- the
    connection is desynchronised and the transport dies."""
    endpoint = _wrapped(FaultPlan([FaultEvent(kind="drop_reply", after=1)]))
    endpoint.submit("ping", ())
    with pytest.raises(ShardTransportError, match="drop_reply"):
        endpoint.collect()
    with pytest.raises(ShardTransportError):
        endpoint.submit("ping", ())
    endpoint.close()


def test_slow_collect_is_benign():
    """slow_collect: tail latency only -- the answer still arrives."""
    plan = FaultPlan(
        [FaultEvent(kind="slow_collect", after=1, delay=0.001)]
    )
    endpoint = _wrapped(plan)
    assert endpoint.request("ping") == "pong"
    assert endpoint.request("ping") == "pong"  # fires once, then clean
    assert [e["kind"] for e in plan.fired_events()] == ["slow_collect"]
    endpoint.close()


@pytest.mark.parametrize("kind", ["kill_shard", "hang", "drop_reply"])
def test_desynchronising_faults_trigger_failover(kind):
    """Every desynchronising fault kind drives the same failover path."""
    plan = FaultPlan([FaultEvent(kind=kind, shard=0, replica=0, after=1)])
    with SilkMothCluster.from_sets(
        DATA,
        CONFIG,
        shards=2,
        replicas=2,
        fault_plan=plan,
        backoff=0.0,
        deadline=5.0,
    ) as cluster:
        with _oracle() as oracle:
            assert cluster.search(BROAD_REFERENCE) == oracle.search(
                BROAD_REFERENCE
            )
        assert cluster.stats.replicas_lost == 1
        assert cluster.stats.failovers >= 1
        assert cluster.lost_shards() == []


def _oracle(sets=DATA, config=CONFIG):
    """Single-node identity baseline (see ``test_replication.py``)."""
    return SilkMothCluster.from_sets(sets, config, shards=1)


# ----------------------------------------------------------------------
# Chaos storms
# ----------------------------------------------------------------------
#: Fixed-seed storm parameters: enough events to guarantee several
#: firings across the program below, few enough to usually leave a
#: replica standing per shard.
SMOKE_SEED = 1234

#: The deterministic mutation/query program the smoke storm replays.
SMOKE_PROGRAM = [
    ("add", ["storm one common", "ash"]),
    ("remove", 1),
    ("update", 0, ["storm two common", "oak"]),
    ("add", ["storm three common"]),
    ("remove", 2),
    ("add", ["storm four common", "sky"]),
]


def _run_program(cluster, oracle, program):
    """Replay one program on both sides, mirroring degraded resyncs."""
    for step in program:
        live = cluster.live_set_ids()
        target = (
            live[step[1] % len(live)]
            if step[0] != "add" and live
            else None
        )
        try:
            if step[0] == "add":
                cluster.add_set(step[1])
            elif target is None:
                continue
            elif step[0] == "remove":
                cluster.remove_set(target)
            else:
                cluster.update_set(target, step[2])
        except ClusterDegradedError:
            # Nothing committed -- except an update whose tombstone
            # landed before the append was refused everywhere; mirror
            # exactly what the cluster committed.
            if target is not None and not cluster.is_live(target):
                oracle.remove_set(target)
            continue
        if step[0] == "add":
            oracle.add_set(step[1])
        elif step[0] == "remove":
            oracle.remove_set(target)
        else:
            oracle.update_set(target, step[2])


def _audit_identity(cluster, oracle, plan):
    """Post-storm bar: quiesce, revive, and demand bit-identity."""
    assert cluster.live_set_ids() == oracle.live_set_ids()
    plan.quiesce()
    cluster.revive()
    cluster.cache.invalidate()
    assert cluster.search(BROAD_REFERENCE) == oracle.search(BROAD_REFERENCE)
    assert cluster.discover() == oracle.discover()


def test_chaos_smoke_fixed_seed_process_transport():
    """The CI chaos leg: a seeded storm over real worker processes.

    Every fault fired is appended to ``$SILKMOTH_CHAOS_LOG`` (when
    set) so the schedule ships with the CI artifacts; the seed in the
    log is all that is needed to replay the storm locally.
    """
    plan = FaultPlan.random(
        SMOKE_SEED,
        shards=2,
        replicas=2,
        n_events=5,
        commands=("search", "add", "remove"),
        max_after=8,
    )
    with _oracle() as oracle, SilkMothCluster.from_sets(
        DATA,
        CONFIG,
        shards=2,
        replicas=2,
        transport="process",
        fault_plan=plan,
        backoff=0.0,
        deadline=10.0,
    ) as cluster:
        _run_program(cluster, oracle, SMOKE_PROGRAM)
        cluster.search(BROAD_REFERENCE)
        _audit_identity(cluster, oracle, plan)
    log_path = os.environ.get("SILKMOTH_CHAOS_LOG")
    if log_path:
        plan.write_log(log_path)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@_SETTINGS
def test_chaos_storm_random_seeds_inline(seed):
    """Any seeded storm ends in bit-identity after revive (inline).

    The storm itself may degrade shards mid-program -- those failures
    must be typed and commit nothing -- but once the plan is quiesced
    and the dead replicas revived, the cluster answers exactly like
    the oracle again, whatever the storm did.
    """
    plan = FaultPlan.random(
        seed,
        shards=2,
        replicas=2,
        n_events=4,
        commands=("search", "add", "remove"),
        max_after=10,
    )
    with _oracle() as oracle, SilkMothCluster.from_sets(
        DATA,
        CONFIG,
        shards=2,
        replicas=2,
        fault_plan=plan,
        backoff=0.0,
        deadline=5.0,
    ) as cluster:
        _run_program(cluster, oracle, SMOKE_PROGRAM)
        try:
            cluster.search(BROAD_REFERENCE)
        except ClusterDegradedError as exc:
            assert set(exc.shards) <= set(cluster.lost_shards())
        _audit_identity(cluster, oracle, plan)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    extra=st.lists(token_sets(), min_size=0, max_size=3),
)
@_SETTINGS
def test_chaos_storm_preserves_id_space_invariant(seed, extra):
    """Mid-storm, the coordinator id space always matches the shards.

    This is the atomicity satellite at property scale: after *every*
    step of a faulted program (committed or refused), ``live_set_ids``
    on the cluster equals the oracle's mirror -- no half-applied
    mutation ever leaks into the global id space.
    """
    plan = FaultPlan.random(
        seed,
        shards=2,
        replicas=2,
        n_events=5,
        commands=("add", "remove"),
        max_after=6,
    )
    program = SMOKE_PROGRAM + [("add", list(elements)) for elements in extra]
    with _oracle() as oracle, SilkMothCluster.from_sets(
        DATA,
        CONFIG,
        shards=2,
        replicas=2,
        fault_plan=plan,
        backoff=0.0,
    ) as cluster:
        for step in program:
            _run_program(cluster, oracle, [step])
            assert cluster.live_set_ids() == oracle.live_set_ids()


@pytest.mark.bench
@pytest.mark.parametrize("transport", ["inline", "process"])
def test_chaos_sweep_long(transport):
    """Long randomized sweep (bench-marked): many seeds, both backbones."""
    for seed in range(40):
        plan = FaultPlan.random(
            seed,
            shards=3,
            replicas=2,
            n_events=5,
            commands=("search", "add", "remove"),
            max_after=10,
        )
        with _oracle() as oracle, SilkMothCluster.from_sets(
            DATA,
            CONFIG,
            shards=3,
            replicas=2,
            transport=transport,
            fault_plan=plan,
            backoff=0.0,
            deadline=10.0,
        ) as cluster:
            _run_program(cluster, oracle, SMOKE_PROGRAM)
            try:
                cluster.search(BROAD_REFERENCE)
            except ClusterDegradedError as exc:
                assert set(exc.shards) <= set(cluster.lost_shards())
            _audit_identity(cluster, oracle, plan)
