"""Integration tests for the SilkMoth engine against the paper's examples."""

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth, relatedness_value
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind


def _table2_collection():
    t = {i: chr(96 + i) for i in range(1, 13)}

    def el(*ids):
        return " ".join(t[i] for i in ids)

    R = [el(1, 2, 3, 6, 8), el(4, 5, 7, 9, 10), el(1, 4, 5, 11, 12)]
    S = [
        [el(2, 3, 5, 6, 7), el(1, 2, 4, 5, 6), el(1, 2, 3, 4, 7)],
        [el(1, 6, 8), el(1, 4, 5, 6, 7), el(1, 2, 3, 7, 9)],
        [el(1, 2, 3, 4, 6, 8), el(2, 3, 11, 12), el(1, 2, 3, 5)],
        [el(1, 2, 3, 8), el(4, 5, 7, 9, 10), el(1, 4, 5, 6, 9)],
    ]
    return R, SetCollection.from_strings(S)


class TestRelatednessValue:
    def test_containment(self):
        assert relatedness_value(Relatedness.CONTAINMENT, 2.1, 3, 5) == pytest.approx(0.7)

    def test_similarity(self):
        assert relatedness_value(Relatedness.SIMILARITY, 2.0, 3, 4) == pytest.approx(2 / 5)

    def test_zero_reference(self):
        assert relatedness_value(Relatedness.CONTAINMENT, 0.0, 0, 5) == 0.0

    def test_perfect_similarity(self):
        assert relatedness_value(Relatedness.SIMILARITY, 3.0, 3, 3) == pytest.approx(1.0)

    def test_degenerate_denominator_requires_positive_score(self):
        # Regression: a non-positive Jaccard denominator used to report
        # relatedness 1.0 even with score == 0 (e.g. degenerate sets
        # that are empty after tokenisation).  Perfect similarity must
        # only be claimed when the matching actually scored.
        assert relatedness_value(Relatedness.SIMILARITY, 2.0, 1, 1) == 1.0
        assert relatedness_value(Relatedness.SIMILARITY, 0.0, 1, -1) == 0.0

    def test_empty_after_tokenization_sets_are_related(self):
        # sim(empty, empty) == 1.0 end to end: a set whose elements all
        # tokenise to nothing matches its twin exactly.
        collection = SetCollection.from_strings([[""], ["a b"]])
        engine = SilkMoth(collection, SilkMothConfig(delta=0.5))
        reference = engine.reference_collection([[""]])[0]
        results = engine.search(reference)
        assert [r.set_id for r in results] == [0]
        assert results[0].score == pytest.approx(1.0)
        assert results[0].relatedness == pytest.approx(1.0)


class TestSearchMode:
    def test_example2_containment(self):
        """Example 2: only S4 is related at delta = 0.7 (containment)."""
        R, collection = _table2_collection()
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.7)
        engine = SilkMoth(collection, config)
        reference = engine.reference_collection([R])[0]
        results = engine.search(reference)
        assert [r.set_id for r in results] == [3]
        assert results[0].score == pytest.approx(0.8 + 1.0 + 3 / 7, abs=1e-9)
        assert results[0].relatedness == pytest.approx((0.8 + 1.0 + 3 / 7) / 3)

    def test_higher_delta_excludes_s4(self):
        R, collection = _table2_collection()
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.8)
        engine = SilkMoth(collection, config)
        reference = engine.reference_collection([R])[0]
        assert engine.search(reference) == []

    def test_empty_reference(self):
        R, collection = _table2_collection()
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.7)
        engine = SilkMoth(collection, config)
        reference = engine.reference_collection([[]])[0]
        assert engine.search(reference) == []

    def test_stats_funnel_monotone(self):
        R, collection = _table2_collection()
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.7)
        engine = SilkMoth(collection, config)
        reference = engine.reference_collection([R])[0]
        _, stats = engine.search_with_stats(reference)
        assert stats.initial_candidates >= stats.after_check
        assert stats.after_check >= stats.after_nn
        assert stats.after_nn == stats.verified
        assert stats.verified >= stats.matches

    def test_mismatched_tokenizer_rejected(self):
        _, collection = _table2_collection()
        config = SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.8, delta=0.7)
        with pytest.raises(ValueError):
            SilkMoth(collection, config)

    def test_mismatched_q_rejected(self):
        collection = SetCollection.from_strings(
            [["abc"]], kind=SimilarityKind.EDS, q=2
        )
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS, alpha=0.8, delta=0.7, q=5
        )
        with pytest.raises(ValueError):
            SilkMoth(collection, config)


class TestDiscoveryMode:
    def test_self_discovery_excludes_self_pairs(self):
        _, collection = _table2_collection()
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.5)
        engine = SilkMoth(collection, config)
        for pair in engine.discover():
            assert pair.reference_id != pair.set_id

    def test_self_discovery_symmetric_dedup(self):
        _, collection = _table2_collection()
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.3)
        engine = SilkMoth(collection, config)
        pairs = engine.discover()
        keys = [(p.reference_id, p.set_id) for p in pairs]
        assert len(keys) == len(set(keys))
        for r, s in keys:
            assert r < s

    def test_cross_collection_discovery(self):
        R, collection = _table2_collection()
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.7)
        engine = SilkMoth(collection, config)
        references = engine.reference_collection([R])
        pairs = engine.discover(references)
        assert [(p.reference_id, p.set_id) for p in pairs] == [(0, 3)]

    def test_identical_sets_are_related(self):
        collection = SetCollection.from_strings([["a b", "c d"], ["a b", "c d"]])
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.99)
        engine = SilkMoth(collection, config)
        pairs = engine.discover()
        assert [(p.reference_id, p.set_id) for p in pairs] == [(0, 1)]
        assert pairs[0].relatedness == pytest.approx(1.0)


class TestConfig:
    def test_delta_validation(self):
        with pytest.raises(ValueError):
            SilkMothConfig(delta=0.0)
        with pytest.raises(ValueError):
            SilkMothConfig(delta=1.5)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            SilkMothConfig(alpha=-0.2)

    def test_effective_q_from_alpha(self):
        config = SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.85, delta=0.7)
        assert config.effective_q == 5

    def test_effective_q_explicit(self):
        config = SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.85, delta=0.7, q=3)
        assert config.effective_q == 3

    def test_jaccard_effective_q_is_one(self):
        assert SilkMothConfig().effective_q == 1

    def test_noopt_configuration(self):
        noopt = SilkMothConfig().with_no_optimizations()
        assert noopt.scheme == "comb_unweighted"
        assert not noopt.check_filter
        assert not noopt.nn_filter
        assert not noopt.reduction

    def test_reduction_skipped_when_alpha_positive(self):
        # reduction=True with alpha > 0 must not raise: the engine falls
        # back to plain matching (Section 6.5).
        _, collection = _table2_collection()
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY, delta=0.5, alpha=0.3, reduction=True
        )
        engine = SilkMoth(collection, config)
        engine.discover()  # must not raise
