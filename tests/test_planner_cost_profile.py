"""Measured-cost calibration of the planner's backend choice.

The ROADMAP's "calibrate from measured timings" item, minimal version:
when ``SILKMOTH_COST_PROFILE`` points at a perf-trajectory file, the
cost model must prefer the measured-fastest backend over the fixed
``NUMPY_MIN_SETS`` constant -- and must keep every exactness property
untouched (the backend never changes results, only speed).
"""

import json

import pytest

from repro.backends import available_backends
from repro.core.config import SilkMothConfig
from repro.planner.cost import (
    MEASURED_COSTS_ENV_VAR,
    MeasuredCosts,
    choose_backend,
    load_measured_costs,
)
from repro.planner.planner import plan_query


def _profile(tmp_path, backends):
    payload = {
        "schema": "silkmoth-perf-trajectory/1",
        "calibration": {"backends": backends},
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadMeasuredCosts:
    def test_unset_returns_none(self, monkeypatch):
        monkeypatch.delenv(MEASURED_COSTS_ENV_VAR, raising=False)
        assert load_measured_costs() is None

    def test_parses_backend_seconds(self, tmp_path):
        path = _profile(
            tmp_path,
            {"python": {"seconds": 1.5}, "numpy": {"seconds": 0.5}},
        )
        costs = load_measured_costs(path)
        assert costs.backend_seconds == {"python": 1.5, "numpy": 0.5}
        assert costs.source == path

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read cost profile"):
            load_measured_costs(str(tmp_path / "absent.json"))

    def test_profile_without_timings_raises(self, tmp_path):
        path = _profile(tmp_path, {"python": {"seconds": "broken"}})
        with pytest.raises(ValueError, match="no calibration"):
            load_measured_costs(path)


class TestChooseBackendMeasured:
    def test_measured_fastest_wins(self):
        costs = MeasuredCosts(
            backend_seconds={"python": 0.2, "numpy": 1.0}, source="bench.json"
        )
        backend, reason = choose_backend(None, costs)
        if "numpy" in available_backends():
            assert backend == "python"
            assert "measured fastest" in reason
        else:
            # One available backend -> one timing -> no comparison.
            assert backend == "python"

    def test_single_timing_falls_back_to_heuristics(self):
        costs = MeasuredCosts(
            backend_seconds={"python": 0.2}, source="bench.json"
        )
        backend, reason = choose_backend(None, costs)
        assert "measured" not in reason

    def test_plan_query_consumes_the_env_profile(self, tmp_path, monkeypatch):
        path = _profile(
            tmp_path,
            {"python": {"seconds": 0.1}, "numpy": {"seconds": 9.9}},
        )
        monkeypatch.setenv(MEASURED_COSTS_ENV_VAR, path)
        # SILKMOTH_BACKEND outranks the cost model by design; clear it
        # so this test exercises the measured path regardless of the
        # CI matrix leg it runs on.
        monkeypatch.delenv("SILKMOTH_BACKEND", raising=False)
        decision = plan_query(SilkMothConfig())
        if "numpy" in available_backends():
            assert decision.backend == "python"
            assert any("measured fastest" in r for r in decision.reasons)

    def test_pinned_backend_ignores_measurements(self, tmp_path, monkeypatch):
        path = _profile(
            tmp_path,
            {"python": {"seconds": 9.9}, "numpy": {"seconds": 0.1}},
        )
        monkeypatch.setenv(MEASURED_COSTS_ENV_VAR, path)
        decision = plan_query(SilkMothConfig(backend="python"))
        assert decision.backend == "python"
        assert decision.backend_source == "config"
