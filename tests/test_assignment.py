"""Alignment extraction: score consistency, validity, edge cases."""

import random

import pytest

np = pytest.importorskip("numpy")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SetCollection
from repro.matching.assignment import (
    matching_alignment,
    max_weight_assignment,
)
from repro.matching.hungarian import hungarian_max_weight
from repro.matching.score import matching_score
from repro.sim.functions import SimilarityFunction, SimilarityKind


class TestMaxWeightAssignment:
    def test_identity_matrix(self):
        score, pairs = max_weight_assignment(np.eye(3))
        assert score == pytest.approx(3.0)
        assert pairs == [(0, 0), (1, 1), (2, 2)]

    def test_rectangular_wide(self):
        weights = np.array([[0.0, 0.9, 0.1]])
        score, pairs = max_weight_assignment(weights)
        assert score == pytest.approx(0.9)
        assert pairs == [(0, 1)]

    def test_rectangular_tall(self):
        weights = np.array([[0.0], [0.9], [0.1]])
        score, pairs = max_weight_assignment(weights)
        assert score == pytest.approx(0.9)
        assert pairs == [(1, 0)]

    def test_zero_pairs_omitted(self):
        weights = np.array([[1.0, 0.0], [0.0, 0.0]])
        score, pairs = max_weight_assignment(weights)
        assert score == pytest.approx(1.0)
        assert pairs == [(0, 0)]

    def test_empty(self):
        assert max_weight_assignment(np.zeros((0, 3))) == (0.0, [])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            max_weight_assignment(np.array([[-1.0]]))

    def test_pairs_are_a_matching(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            n, m = rng.integers(1, 8, size=2)
            weights = rng.random((n, m))
            _, pairs = max_weight_assignment(weights)
            rows = [i for i, _ in pairs]
            cols = [j for _, j in pairs]
            assert len(rows) == len(set(rows))
            assert len(cols) == len(set(cols))

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_score_matches_hungarian(self, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(1, 7)), int(rng.integers(1, 7))
        weights = rng.random((n, m))
        score, pairs = max_weight_assignment(weights)
        assert score == pytest.approx(hungarian_max_weight(weights))
        assert score == pytest.approx(
            sum(weights[i, j] for i, j in pairs)
        )


class TestMatchingAlignment:
    @pytest.fixture
    def address_pair(self):
        collection = SetCollection.from_strings(
            [
                [
                    "77 Massachusetts Avenue Boston MA",
                    "Fifth Street Seattle MA 02115",
                    "77 Fifth Street Chicago IL",
                    "One Kendall Square Cambridge MA",
                ],
            ]
        )
        sibling = collection.sibling()
        reference = sibling.add_set(
            [
                "77 Mass Ave Boston MA",
                "5th St 02115 Seattle WA",
                "77 5th St Chicago IL",
            ]
        )
        return reference, collection[0]

    def test_weights_sum_to_matching_score(self, address_pair):
        reference, candidate = address_pair
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        alignment = matching_alignment(reference, candidate, phi)
        total = sum(pair.weight for pair in alignment)
        assert total == pytest.approx(matching_score(reference, candidate, phi))

    def test_each_reference_aligned_once(self, address_pair):
        reference, candidate = address_pair
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        alignment = matching_alignment(reference, candidate, phi)
        ref_indices = [pair.reference_index for pair in alignment]
        assert len(ref_indices) == len(set(ref_indices))

    def test_paper_example_alignment(self, address_pair):
        # Example 1's structure: rows align 1-1, 2-2, 3-3.  (The prose
        # values 1/3, 1/3, 3/5 in the paper do not follow from its own
        # Jaccard definition -- cf. Example 2, which computes 3/7 for
        # the same kind of pair -- so we assert the definitional values.)
        reference, candidate = address_pair
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.2)
        alignment = {
            pair.reference_index: pair
            for pair in matching_alignment(reference, candidate, phi)
        }
        assert alignment[0].candidate_index == 0
        assert alignment[1].candidate_index == 1
        assert alignment[2].candidate_index == 2
        # {77, Boston, MA} shared of 7 distinct words.
        assert alignment[0].weight == pytest.approx(3 / 7)
        # {Seattle, 02115} shared of 8 distinct words.
        assert alignment[1].weight == pytest.approx(1 / 4)
        # {77, Chicago, IL} shared of 7 distinct words.
        assert alignment[2].weight == pytest.approx(3 / 7)

    def test_empty_sets(self):
        collection = SetCollection.from_strings([["a"]])
        empty = collection.sibling().add_set([])
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        assert matching_alignment(empty, collection[0], phi) == []

    def test_edit_similarity_alignment(self):
        collection = SetCollection.from_strings(
            [["silkmoth", "matching"]], kind=SimilarityKind.EDS, q=2
        )
        reference = collection.sibling().add_set(["silkmoth", "watching"])
        phi = SimilarityFunction(SimilarityKind.EDS)
        alignment = matching_alignment(reference, collection[0], phi)
        total = sum(pair.weight for pair in alignment)
        assert total == pytest.approx(
            matching_score(reference, collection[0], phi)
        )
        identical = [p for p in alignment if p.weight == pytest.approx(1.0)]
        assert len(identical) == 1

    def test_random_consistency_with_score(self):
        rng = random.Random(8)
        vocab = [f"w{i}" for i in range(10)]
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        for _ in range(30):
            sets = [
                [
                    " ".join(rng.sample(vocab, rng.randint(1, 4)))
                    for _ in range(rng.randint(1, 5))
                ]
                for _ in range(2)
            ]
            collection = SetCollection.from_strings(sets)
            alignment = matching_alignment(collection[0], collection[1], phi)
            total = sum(pair.weight for pair in alignment)
            assert total == pytest.approx(
                matching_score(collection[0], collection[1], phi)
            )
