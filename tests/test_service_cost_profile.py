"""Live-traffic planner calibration: ServiceStats.export_cost_profile.

The service accumulates each cold pass's per-stage wall clock per
compute backend; exporting must produce a file the planner's
:func:`repro.planner.cost.load_measured_costs` accepts, with mean-per-
pass seconds (comparable across backends regardless of traffic split).
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import SilkMothConfig
from repro.core.stats import PassStats
from repro.planner.cost import load_measured_costs
from repro.service import ServiceStats, SilkMothService


def _stats_with_passes() -> ServiceStats:
    stats = ServiceStats()
    stats.record_pass(
        PassStats(backend="python", stage_seconds={"select": 0.2, "verify": 0.2})
    )
    stats.record_pass(
        PassStats(backend="python", stage_seconds={"select": 0.1, "verify": 0.1})
    )
    stats.record_pass(
        PassStats(backend="numpy", stage_seconds={"select": 0.15, "verify": 0.05})
    )
    return stats


def test_record_pass_accumulates_per_stage_and_backend():
    stats = _stats_with_passes()
    assert stats.stage_seconds["select"] == pytest.approx(0.45)
    assert stats.stage_seconds["verify"] == pytest.approx(0.35)
    assert stats.backend_seconds["python"]["passes"] == 2
    assert stats.backend_seconds["python"]["seconds"] == pytest.approx(0.6)
    assert stats.backend_seconds["numpy"]["passes"] == 1


def test_export_writes_mean_per_pass_seconds(tmp_path):
    stats = _stats_with_passes()
    path = tmp_path / "profile.json"
    payload = stats.export_cost_profile(path)
    backends = payload["calibration"]["backends"]
    assert backends["python"]["seconds"] == pytest.approx(0.3)
    assert backends["numpy"]["seconds"] == pytest.approx(0.2)
    on_disk = json.loads(path.read_text())
    assert on_disk["calibration"]["backends"] == backends


def test_export_loads_through_planner_cost_model(tmp_path):
    """The exported file is SILKMOTH_COST_PROFILE-compatible."""
    stats = _stats_with_passes()
    path = tmp_path / "profile.json"
    stats.export_cost_profile(path)
    measured = load_measured_costs(str(path))
    assert measured is not None
    # numpy measured faster per pass on this synthetic traffic.
    assert measured.fastest_backend(("python", "numpy")) == "numpy"


def test_export_without_traffic_raises(tmp_path):
    with pytest.raises(ValueError):
        ServiceStats().export_cost_profile(tmp_path / "profile.json")
    assert not (tmp_path / "profile.json").exists()


def test_live_service_accumulates_and_exports(tmp_path):
    """An actual served query produces an exportable profile."""
    service = SilkMothService(SilkMothConfig(delta=0.4, backend="python"))
    service.add_set(["ash bay", "elm"])
    service.add_set(["oak sky"])
    service.search(["ash bay"])
    service.search(["ash bay"])  # cache hit: adds no pass
    stats = service.stats
    assert stats.backend_seconds["python"]["passes"] == 1
    assert set(stats.stage_seconds) >= {"select", "verify"}
    payload = stats.export_cost_profile(tmp_path / "profile.json")
    assert "python" in payload["calibration"]["backends"]
    assert load_measured_costs(str(tmp_path / "profile.json")) is not None


def test_stats_round_trip_preserves_calibration_fields():
    """to_dict/from_dict carry the stage and backend accumulators."""
    stats = _stats_with_passes()
    restored = ServiceStats.from_dict(
        json.loads(json.dumps(stats.to_dict()))
    )
    assert restored.stage_seconds == pytest.approx(stats.stage_seconds)
    assert restored.backend_seconds["python"]["passes"] == 2
    # The restored stats keep exporting correctly.
    assert restored.backend_seconds["python"]["seconds"] == pytest.approx(0.6)


def test_failed_export_never_corrupts_an_existing_profile(tmp_path, monkeypatch):
    """Atomicity: a crash mid-export leaves the old profile intact.

    The write goes to a sibling temp file first and only an
    ``os.replace`` publishes it; simulate the crash at the rename and
    assert the previous good profile survives byte-for-byte with no
    temp debris left behind.
    """
    import os

    import repro.io.persistence as persistence

    stats = _stats_with_passes()
    path = tmp_path / "profile.json"
    stats.export_cost_profile(path)
    original = path.read_text()

    real_replace = os.replace

    def exploding_replace(src, dst):
        raise OSError("simulated crash at publish")

    monkeypatch.setattr(persistence.os, "replace", exploding_replace)
    stats.record_pass(
        PassStats(backend="python", stage_seconds={"verify": 1.0})
    )
    with pytest.raises(OSError):
        stats.export_cost_profile(path)
    monkeypatch.setattr(persistence.os, "replace", real_replace)
    assert path.read_text() == original
    assert load_measured_costs(str(path)) is not None
    assert [p.name for p in tmp_path.iterdir()] == ["profile.json"]


def test_failed_export_to_missing_directory_leaves_nothing(tmp_path):
    stats = _stats_with_passes()
    target = tmp_path / "no" / "such" / "dir" / "profile.json"
    with pytest.raises(OSError):
        stats.export_cost_profile(target)
    assert list(tmp_path.iterdir()) == []
