"""IO round-trips: loaders for the three application mappings, writers/readers."""

import json

import pytest

from repro.core.engine import DiscoveryResult, SearchResult
from repro.io import (
    load_csv_columns,
    load_csv_schema,
    load_jsonl_sets,
    load_string_sets,
    read_discovery_csv,
    read_discovery_json,
    read_search_csv,
    read_search_json,
    sets_from_iterable,
    write_discovery_csv,
    write_discovery_json,
    write_search_csv,
    write_search_json,
)


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "table.csv"
    path.write_text(
        "city,zip,population\n"
        "Boston,02115,650000\n"
        "Seattle,98101,750000\n"
        "Chicago,60601,2700000\n"
        "Boston,02116,\n"
    )
    return path


class TestLoadStringSets:
    def test_lines_become_word_sets(self, tmp_path):
        path = tmp_path / "titles.txt"
        path.write_text("Database System Concepts\n\nSilkMoth Related Sets\n")
        sets = load_string_sets(path)
        assert sets == [
            ["Database", "System", "Concepts"],
            ["SilkMoth", "Related", "Sets"],
        ]

    def test_blank_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        assert load_string_sets(path) == []


class TestLoadJsonlSets:
    def test_valid_lines(self, tmp_path):
        path = tmp_path / "sets.jsonl"
        path.write_text('["a b", "c"]\n\n["d"]\n')
        assert load_jsonl_sets(path) == [["a b", "c"], ["d"]]

    def test_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\n')
        with pytest.raises(ValueError, match="expected a JSON array"):
            load_jsonl_sets(path)

    def test_rejects_non_string_elements(self, tmp_path):
        path = tmp_path / "bad2.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="elements must be strings"):
            load_jsonl_sets(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad3.jsonl"
        path.write_text("[not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_jsonl_sets(path)


class TestLoadCsvColumns:
    def test_basic_columns(self, csv_file):
        columns = load_csv_columns(csv_file, skip_numeric=False)
        assert set(columns) == {"city", "zip", "population"}
        assert columns["city"] == ["Boston", "Seattle", "Chicago", "Boston"]

    def test_skip_numeric_drops_all_number_columns(self, csv_file):
        columns = load_csv_columns(csv_file, skip_numeric=True)
        assert "population" not in columns
        # zip values are numeric strings too.
        assert "zip" not in columns
        assert "city" in columns

    def test_min_distinct(self, csv_file):
        columns = load_csv_columns(csv_file, skip_numeric=False, min_distinct=4)
        # city has 3 distinct values, zip 4, population 3 (empty dropped).
        assert "zip" in columns
        assert "city" not in columns

    def test_column_selection(self, csv_file):
        columns = load_csv_columns(
            csv_file, columns=["city"], skip_numeric=False
        )
        assert list(columns) == ["city"]

    def test_duplicate_headers_get_suffixes(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("name,name\nalpha,beta\n")
        columns = load_csv_columns(path)
        assert set(columns) == {"name", "name#2"}

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert load_csv_columns(path) == {}

    def test_empty_cells_dropped(self, csv_file):
        columns = load_csv_columns(csv_file, skip_numeric=False)
        assert len(columns["population"]) == 3


class TestLoadCsvSchema:
    def test_one_element_per_attribute(self, csv_file):
        elements = load_csv_schema(csv_file)
        assert len(elements) == 3
        assert elements[0] == "Boston Seattle Chicago Boston"

    def test_sample_rows(self, csv_file):
        elements = load_csv_schema(csv_file, sample_rows=1)
        assert elements[0] == "Boston"


class TestSetsFromIterable:
    def test_normalises(self):
        assert sets_from_iterable([("a",), ["b", "c"]]) == [["a"], ["b", "c"]]


DISCOVERY = [
    DiscoveryResult(reference_id=0, set_id=3, score=2.25, relatedness=0.75),
    DiscoveryResult(reference_id=1, set_id=2, score=1.5, relatedness=0.5),
]
SEARCH = [
    SearchResult(set_id=3, score=2.25, relatedness=0.75),
    SearchResult(set_id=7, score=3.0, relatedness=1.0),
]


class TestWriterRoundTrips:
    def test_discovery_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        assert write_discovery_csv(path, DISCOVERY) == 2
        assert read_discovery_csv(path) == DISCOVERY

    def test_discovery_json(self, tmp_path):
        path = tmp_path / "out.json"
        assert write_discovery_json(path, DISCOVERY) == 2
        assert read_discovery_json(path) == DISCOVERY

    def test_search_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        assert write_search_csv(path, SEARCH) == 2
        assert read_search_csv(path) == SEARCH

    def test_search_json(self, tmp_path):
        path = tmp_path / "out.json"
        assert write_search_json(path, SEARCH) == 2
        assert read_search_json(path) == SEARCH

    def test_csv_header_validated(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="expected header"):
            read_discovery_csv(path)
        with pytest.raises(ValueError, match="expected header"):
            read_search_csv(path)

    def test_json_is_valid_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_discovery_json(path, DISCOVERY)
        payload = json.loads(path.read_text())
        assert payload[0]["reference_id"] == 0

    def test_empty_results(self, tmp_path):
        path = tmp_path / "none.csv"
        assert write_discovery_csv(path, []) == 0
        assert read_discovery_csv(path) == []


class TestCollectionSnapshots:
    def test_round_trip(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import load_collection, save_collection

        original = SetCollection.from_strings(
            [["77 Mass Ave Boston MA"], ["5th St Seattle WA", "Chicago IL"]]
        )
        path = tmp_path / "snapshot.json"
        save_collection(path, original)
        loaded = load_collection(path)
        assert len(loaded) == len(original)
        for a, b in zip(loaded, original):
            assert [e.text for e in a.elements] == [e.text for e in b.elements]
            assert [e.index_tokens for e in a.elements] == [
                e.index_tokens for e in b.elements
            ]

    def test_round_trip_edit_kind(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import load_collection, save_collection
        from repro.sim.functions import SimilarityKind

        original = SetCollection.from_strings(
            [["silkmoth"], ["matching"]], kind=SimilarityKind.EDS, q=3
        )
        path = tmp_path / "snapshot.json"
        save_collection(path, original)
        loaded = load_collection(path)
        assert loaded.tokenizer.kind is SimilarityKind.EDS
        assert loaded.tokenizer.q == 3

    def test_rejects_foreign_json(self, tmp_path):
        from repro.io import load_collection

        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="not a silkmoth-collection"):
            load_collection(path)

    def test_rejects_future_version(self, tmp_path):
        from repro.io import load_collection

        path = tmp_path / "future.json"
        path.write_text(
            '{"format": "silkmoth-collection", "version": 99, '
            '"similarity": "jaccard", "q": 1, "sets": []}'
        )
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            load_collection(path)

    def test_search_results_identical_after_reload(self, tmp_path):
        from repro.core.config import SilkMothConfig
        from repro.core.engine import SilkMoth
        from repro.core.records import SetCollection
        from repro.io import load_collection, save_collection

        sets = [
            ["a b c", "d e"],
            ["a b c", "d f"],
            ["x y z"],
        ]
        original = SetCollection.from_strings(sets)
        path = tmp_path / "snap.json"
        save_collection(path, original)
        loaded = load_collection(path)
        config = SilkMothConfig(delta=0.5)
        first = SilkMoth(original, config).discover()
        second = SilkMoth(loaded, config).discover()
        assert [(r.reference_id, r.set_id) for r in first] == [
            (r.reference_id, r.set_id) for r in second
        ]


class TestSnapshotFaults:
    """Typed failure paths: corrupt, truncated and skewed snapshots.

    The VDBMS bug study's "incomplete persistence" class in test form:
    whatever a crashed writer or bit-rotting disk leaves behind, loads
    must fail with a *typed* snapshot error (never a raw ``KeyError``
    or ``JSONDecodeError``), and the corruption helpers used by the
    chaos suites must be deterministic.
    """

    def _snapshot(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import save_collection

        path = tmp_path / "snap.json"
        save_collection(
            path, SetCollection.from_strings([["a b", "c"], ["d e"]])
        )
        return path

    def test_truncated_snapshot_is_a_typed_error(self, tmp_path):
        from repro.io import SnapshotFormatError, load_collection
        from repro.io.persistence import truncate_snapshot

        path = self._snapshot(tmp_path)
        original = path.stat().st_size
        kept = truncate_snapshot(path, keep_fraction=0.5)
        assert 0 < kept < original
        assert path.stat().st_size == kept
        with pytest.raises(SnapshotFormatError):
            load_collection(path)

    def test_truncation_to_nothing_is_a_typed_error(self, tmp_path):
        from repro.io import SnapshotFormatError, load_collection
        from repro.io.persistence import truncate_snapshot

        path = self._snapshot(tmp_path)
        assert truncate_snapshot(path, keep_fraction=0.0) == 0
        with pytest.raises(SnapshotFormatError):
            load_collection(path)

    def test_bitflip_at_structural_byte_is_a_typed_error(self, tmp_path):
        from repro.io import SnapshotFormatError, load_collection
        from repro.io.persistence import bitflip_snapshot

        path = self._snapshot(tmp_path)
        # Byte 0 is the opening brace; flipping a bit there guarantees
        # the JSON layer (not the content) is what breaks.
        assert bitflip_snapshot(path, offset=0) == 0
        with pytest.raises(SnapshotFormatError):
            load_collection(path)

    def test_seeded_bitflip_is_deterministic(self, tmp_path):
        from repro.io.persistence import bitflip_snapshot

        first = self._snapshot(tmp_path)
        offset_a = bitflip_snapshot(first, seed=42)
        # Re-create a pristine copy and flip with the same seed: the
        # chosen offset must be identical (the chaos log's seed is all
        # that is needed to replay a corruption).
        again = tmp_path / "again"
        again.mkdir()
        pristine = self._snapshot(again)
        offset_b = bitflip_snapshot(pristine, seed=42)
        assert offset_a == offset_b

    def test_snapshot_errors_subclass_value_error(self):
        from repro.io import (
            SnapshotError,
            SnapshotFormatError,
            SnapshotVersionError,
        )

        assert issubclass(SnapshotError, ValueError)
        assert issubclass(SnapshotFormatError, SnapshotError)
        assert issubclass(SnapshotVersionError, SnapshotError)

    def test_version_skew_is_a_typed_error(self, tmp_path):
        from repro.io import SnapshotVersionError, load_collection

        path = tmp_path / "future.json"
        path.write_text(
            '{"format": "silkmoth-collection", "version": 99, '
            '"similarity": "jaccard", "q": 1, "sets": []}'
        )
        with pytest.raises(SnapshotVersionError):
            load_collection(path)

    def test_foreign_json_is_a_typed_error(self, tmp_path):
        from repro.io import SnapshotFormatError, load_collection

        path = tmp_path / "foreign.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(SnapshotFormatError):
            load_collection(path)

    def test_cluster_manifest_missing_fields_is_a_typed_error(
        self, tmp_path
    ):
        from repro.io import SnapshotFormatError
        from repro.io.persistence import load_cluster_manifest

        path = tmp_path / "manifest.json"
        path.write_text(
            '{"format": "silkmoth-cluster", "version": 1, "shards": []}'
        )
        with pytest.raises(SnapshotFormatError):
            load_cluster_manifest(path)

    def test_corrupted_shard_structure_is_a_typed_error(self, tmp_path):
        from repro.io import SnapshotFormatError, load_collection

        path = tmp_path / "bad-sets.json"
        path.write_text(
            '{"format": "silkmoth-collection", "version": 1, '
            '"similarity": "jaccard", "q": 1, "sets": [42]}'
        )
        with pytest.raises(SnapshotFormatError):
            load_collection(path)


class TestDurableWrites:
    """The atomic-write primitive under failure: no torn destinations.

    ``atomic_write_text`` is the single funnel every snapshot, manifest
    and export goes through, so its guarantees -- an existing good file
    is never destroyed, a failed write leaves no temp litter, fsync
    policy resolves predictably -- are what every other durability
    claim in the repo rests on.
    """

    def test_resolve_fsync_argument_beats_environment(self, monkeypatch):
        from repro.io.persistence import resolve_fsync

        monkeypatch.setenv("SILKMOTH_FSYNC", "0")
        assert resolve_fsync(True) is True
        monkeypatch.setenv("SILKMOTH_FSYNC", "1")
        assert resolve_fsync(False) is False

    def test_resolve_fsync_defaults_on(self, monkeypatch):
        from repro.io.persistence import resolve_fsync

        monkeypatch.delenv("SILKMOTH_FSYNC", raising=False)
        assert resolve_fsync() is True
        # Unrecognised values keep the safe default too.
        monkeypatch.setenv("SILKMOTH_FSYNC", "definitely")
        assert resolve_fsync() is True

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", "", " No "])
    def test_resolve_fsync_off_switches(self, monkeypatch, value):
        from repro.io.persistence import resolve_fsync

        monkeypatch.setenv("SILKMOTH_FSYNC", value)
        assert resolve_fsync() is False

    def test_write_leaves_no_temp_file(self, tmp_path):
        from repro.io.persistence import atomic_write_text

        path = tmp_path / "out.json"
        atomic_write_text(path, "payload", fsync=False)
        assert path.read_text() == "payload"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_replace_preserves_the_old_file(
        self, tmp_path, monkeypatch
    ):
        import os as os_module

        from repro.io.persistence import atomic_write_text

        path = tmp_path / "out.json"
        atomic_write_text(path, "good", fsync=False)

        def refuse(*_args, **_kwargs):
            raise OSError("disk pulled")

        monkeypatch.setattr(os_module, "replace", refuse)
        with pytest.raises(OSError, match="disk pulled"):
            atomic_write_text(path, "half-written", fsync=False)
        monkeypatch.undo()
        # The crash window hit between temp write and rename: the old
        # bytes survive intact and the temp file was cleaned up.
        assert path.read_text() == "good"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_fsync_preserves_the_old_file(self, tmp_path, monkeypatch):
        import os as os_module

        from repro.io.persistence import atomic_write_text

        path = tmp_path / "out.json"
        atomic_write_text(path, "good", fsync=False)

        def refuse(_fd):
            raise OSError("fsync refused")

        monkeypatch.setattr(os_module, "fsync", refuse)
        with pytest.raises(OSError, match="fsync refused"):
            atomic_write_text(path, "unsynced", fsync=True)
        monkeypatch.undo()
        # fsync failed *before* the rename, so the data that could not
        # be made durable never took the destination's name.
        assert path.read_text() == "good"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_fsync_directory_survives_unopenable_paths(self, tmp_path):
        from repro.io.persistence import fsync_directory

        # Best-effort by contract: a missing directory is a no-op, not
        # an error (some filesystems refuse directory descriptors).
        fsync_directory(tmp_path / "nowhere")


class TestDocumentChecksums:
    """Whole-document checksums: silent corruption becomes a typed error.

    Versions 2 (service) and 3 (shard) snapshots and the cluster
    manifest embed a blake2b-8 digest of their own canonical JSON.  A
    file that still *parses* after bit rot -- the case structural
    validation cannot catch -- must fail with
    :class:`SnapshotCorruptionError`, while checksum-less documents
    from older writers keep loading.
    """

    def _corrupt_text_field(self, path, old, new):
        """Flip payload content while keeping the JSON well-formed."""
        text = path.read_text()
        assert old in text
        path.write_text(text.replace(old, new, 1))

    def test_service_snapshot_corruption_is_detected(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import load_service_snapshot
        from repro.io.persistence import (
            SnapshotCorruptionError,
            save_service_snapshot,
        )

        path = tmp_path / "service.json"
        collection = SetCollection.from_strings([["alpha beta", "gamma"]])
        save_service_snapshot(path, collection, {"generation": 7})
        self._corrupt_text_field(path, "alpha beta", "alpha rot")
        with pytest.raises(SnapshotCorruptionError, match="checksum mismatch"):
            load_service_snapshot(path)

    def test_metadata_corruption_is_detected(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import load_service_snapshot
        from repro.io.persistence import (
            SnapshotCorruptionError,
            save_service_snapshot,
        )

        path = tmp_path / "service.json"
        save_service_snapshot(
            path,
            SetCollection.from_strings([["alpha"]]),
            {"generation": 7},
        )
        # Content corruption outside the sets -- a flipped counter in
        # the metadata -- is just as detectable.
        self._corrupt_text_field(path, '"generation": 7', '"generation": 8')
        with pytest.raises(SnapshotCorruptionError):
            load_service_snapshot(path)

    def test_shard_snapshot_corruption_is_detected(self, tmp_path):
        from repro.io.persistence import (
            SnapshotCorruptionError,
            load_shard_snapshot,
            save_shard_snapshot,
        )
        from repro.sim.functions import SimilarityKind

        path = tmp_path / "shard.json"
        save_shard_snapshot(
            path,
            SimilarityKind.JACCARD,
            1,
            [["alpha beta"], ["gamma"]],
            [],
            {"shard": 0, "global_ids": [0, 1]},
        )
        self._corrupt_text_field(path, '"global_ids": [0, 1]', '"global_ids": [0, 2]')
        with pytest.raises(SnapshotCorruptionError):
            load_shard_snapshot(path)

    def test_cluster_manifest_corruption_is_detected(self, tmp_path):
        from repro.io.persistence import (
            SnapshotCorruptionError,
            load_cluster_manifest,
            save_cluster_manifest,
        )
        from repro.sim.functions import SimilarityKind

        path = tmp_path / "cluster.json"
        save_cluster_manifest(
            path,
            SimilarityKind.JACCARD,
            1,
            ["shard-0.json"],
            {"generation": 3},
        )
        self._corrupt_text_field(path, "shard-0.json", "shard-9.json")
        with pytest.raises(SnapshotCorruptionError):
            load_cluster_manifest(path)

    def test_mistyped_checksum_is_a_format_error(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import SnapshotFormatError, load_service_snapshot
        from repro.io.persistence import save_service_snapshot

        path = tmp_path / "service.json"
        save_service_snapshot(path, SetCollection.from_strings([["a"]]), {})
        payload = json.loads(path.read_text())
        payload["checksum"] = 12345
        path.write_text(json.dumps(payload))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            load_service_snapshot(path)

    def test_checksumless_legacy_snapshot_still_loads(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import load_service_snapshot
        from repro.io.persistence import save_service_snapshot

        path = tmp_path / "legacy.json"
        save_service_snapshot(
            path, SetCollection.from_strings([["alpha", "beta gamma"]]), {}
        )
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        collection, _ = load_service_snapshot(path)
        assert len(collection) == 1

    def test_checksum_ignores_key_order(self):
        from repro.io.persistence import document_checksum

        forward = {"a": 1, "b": [2, 3], "checksum": "ignored"}
        backward = {"b": [2, 3], "a": 1}
        assert document_checksum(forward) == document_checksum(backward)

    def test_version_one_snapshots_carry_no_checksum(self, tmp_path):
        from repro.core.records import SetCollection
        from repro.io import load_collection, save_collection

        path = tmp_path / "v1.json"
        save_collection(path, SetCollection.from_strings([["a b"]]))
        # The v1 writer predates checksums and stays byte-compatible.
        assert "checksum" not in json.loads(path.read_text())
        assert len(load_collection(path)) == 1
