"""RunStats aggregation and its integration with the engine."""

import pytest

from repro.core.config import SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.core.stats import PassStats, RunStats


class TestRunStatsAggregation:
    def test_add_accumulates_counters(self):
        run = RunStats()
        run.add(PassStats(signature_tokens=2, initial_candidates=5,
                          after_check=3, after_nn=2, verified=2, matches=1))
        run.add(PassStats(signature_tokens=1, initial_candidates=4,
                          after_check=4, after_nn=3, verified=3, matches=0,
                          full_scan=True))
        assert run.passes == 2
        assert run.signature_tokens == 3
        assert run.initial_candidates == 9
        assert run.after_check == 7
        assert run.after_nn == 5
        assert run.verified == 5
        assert run.matches == 1
        assert run.full_scans == 1
        assert len(run.per_pass) == 2

    def test_fresh_stats_zeroed(self):
        run = RunStats()
        assert run.passes == 0
        assert run.verified == 0
        assert run.per_pass == []


class TestEngineStatsIntegration:
    def test_stats_accumulate_across_searches(self):
        sets = [["a b"], ["a b"], ["c d"]]
        collection = SetCollection.from_strings(sets)
        engine = SilkMoth(collection, SilkMothConfig(delta=0.7))
        engine.search(collection[0], skip_set=0)
        engine.search(collection[1], skip_set=1)
        assert engine.stats.passes == 2

    def test_discover_runs_one_pass_per_reference(self):
        sets = [["a b"], ["c d"], ["e f"]]
        collection = SetCollection.from_strings(sets)
        engine = SilkMoth(collection, SilkMothConfig(delta=0.7))
        engine.discover()
        assert engine.stats.passes == 3

    def test_per_pass_funnel_monotone(self):
        sets = [["x y", "z w"], ["x y", "z q"], ["p p"], ["x y"]]
        collection = SetCollection.from_strings(sets)
        engine = SilkMoth(collection, SilkMothConfig(delta=0.5))
        engine.discover()
        for one_pass in engine.stats.per_pass:
            assert (
                one_pass.initial_candidates
                >= one_pass.after_check
                >= one_pass.after_nn
                >= one_pass.matches
            )

    def test_matches_equals_results(self):
        sets = [["a b"], ["a b"], ["a c"]]
        collection = SetCollection.from_strings(sets)
        engine = SilkMoth(collection, SilkMothConfig(delta=0.5))
        results = engine.discover()
        # Each unordered similarity pair is searched from both sides but
        # reported once; the per-pass matches count both directions.
        assert engine.stats.matches >= len(results)
