"""The cross-stage element-pair similarity memo.

Unit tests pin the memo contract (floor semantics identical to
``edit_at_least``, LRU eviction, generation sync, sizing resolution);
the engine and service tests pin the integration guarantees: hit/miss
counters surface in ``PassStats``/``ServiceStats``, mutation drops the
cache (exactness under mutation never argues about staleness), and
results stay equal to brute force with caching on -- even with a
capacity small enough to force constant eviction.
"""

import random

import pytest

from repro.baselines.brute_force import brute_force_search
from repro.core.config import SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.service import SilkMothService
from repro.sim.functions import SimilarityFunction, SimilarityKind
from repro.sim.memo import (
    DEFAULT_SIM_CACHE_SIZE,
    SIM_CACHE_ENV_VAR,
    SimilarityMemo,
    resolve_sim_cache_size,
)

_PHI = SimilarityFunction(kind=SimilarityKind.EDS, alpha=0.4)


class TestResolveSize:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(SIM_CACHE_ENV_VAR, "10")
        assert resolve_sim_cache_size(7) == 7
        assert resolve_sim_cache_size(0) == 0

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(SIM_CACHE_ENV_VAR, "123")
        assert resolve_sim_cache_size(None) == 123

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(SIM_CACHE_ENV_VAR, raising=False)
        assert resolve_sim_cache_size(None) == DEFAULT_SIM_CACHE_SIZE

    @pytest.mark.parametrize("raw", ["-1", "lots", "1.5"])
    def test_broken_env_var_raises(self, monkeypatch, raw):
        monkeypatch.setenv(SIM_CACHE_ENV_VAR, raw)
        with pytest.raises(ValueError, match=SIM_CACHE_ENV_VAR):
            resolve_sim_cache_size(None)

    def test_config_knob_validation(self):
        with pytest.raises(ValueError, match="sim_cache_size"):
            SilkMothConfig(sim_cache_size=-1)


class TestSimilarityMemo:
    def test_miss_then_hit(self):
        memo = SimilarityMemo(16)
        first = memo.edit_value(_PHI, "kitten", "sitting")
        second = memo.edit_value(_PHI, "kitten", "sitting")
        assert first == second == _PHI.edit_at_least("kitten", "sitting", 0.0)
        assert (memo.hits, memo.misses) == (1, 1)

    def test_symmetric_key(self):
        memo = SimilarityMemo(16)
        memo.edit_value(_PHI, "abcd", "abce")
        assert memo.edit_value(_PHI, "abce", "abcd") > 0.0
        assert memo.hits == 1

    def test_floor_semantics_match_edit_at_least(self):
        memo = SimilarityMemo(64)
        rng = random.Random(3)
        texts = [
            "".join(rng.choice("abcd") for _ in range(rng.randint(0, 10)))
            for _ in range(30)
        ]
        for phi in (
            _PHI,
            SimilarityFunction(kind=SimilarityKind.NEDS, alpha=0.0),
        ):
            memo.clear()
            for x in texts:
                for y in texts:
                    for floor in (0.0, 0.3, 0.8):
                        assert memo.edit_value(phi, x, y, floor) == pytest.approx(
                            phi.edit_at_least(x, y, floor)
                        )

    def test_lru_eviction_respects_capacity(self):
        memo = SimilarityMemo(2)
        memo.edit_value(_PHI, "aa", "ab")
        memo.edit_value(_PHI, "bb", "bc")
        memo.edit_value(_PHI, "cc", "cd")  # evicts the (aa, ab) pair
        assert len(memo) == 2
        memo.edit_value(_PHI, "aa", "ab")
        assert memo.misses == 4 and memo.hits == 0

    def test_capacity_zero_disables(self):
        memo = SimilarityMemo(0)
        assert not memo.enabled
        value = memo.edit_value(_PHI, "kitten", "sitting", 0.2)
        assert value == _PHI.edit_at_least("kitten", "sitting", 0.2)
        assert len(memo) == 0 and memo.hits == 0 and memo.misses == 0

    def test_sync_clears_on_generation_change(self):
        memo = SimilarityMemo(8)
        memo.edit_value(_PHI, "aa", "ab")
        memo.sync(memo.generation)  # same generation: no-op
        assert len(memo) == 1
        memo.sync(memo.generation + 1)
        assert len(memo) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            SimilarityMemo(-1)


def _edit_sets():
    rng = random.Random(11)
    base = ["silkmoth paper", "related sets", "maximum matching", "vldb"]
    sets = []
    for _ in range(10):
        elements = []
        for text in base:
            chars = list(text)
            if rng.random() < 0.6:
                chars[rng.randrange(len(chars))] = rng.choice("abcdefgh")
            elements.append("".join(chars))
        sets.append(elements)
    return sets


class TestEngineIntegration:
    def test_pass_stats_expose_hits_and_misses(self):
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS, delta=0.4, alpha=0.5
        )
        collection = SetCollection.from_strings(
            _edit_sets(), kind=config.similarity, q=config.effective_q
        )
        engine = SilkMoth(collection, config)
        engine.discover()
        assert engine.stats.sim_cache_misses > 0
        assert engine.stats.sim_cache_hits > 0
        # A repeated pass over cached pairs must be all hits.
        _, stats = engine.search_with_stats(collection[0], skip_set=0)
        assert stats.sim_cache_misses == 0
        assert stats.sim_cache_hits > 0

    @pytest.mark.parametrize("capacity", [0, 3, 100000])
    def test_exact_under_any_capacity(self, capacity):
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS,
            delta=0.4,
            alpha=0.5,
            sim_cache_size=capacity,
        )
        collection = SetCollection.from_strings(
            _edit_sets(), kind=config.similarity, q=config.effective_q
        )
        engine = SilkMoth(collection, config)
        for reference in collection:
            got = sorted(
                r.set_id
                for r in engine.search(reference, skip_set=reference.set_id)
            )
            expected = sorted(
                r.set_id
                for r in brute_force_search(
                    reference, collection, config, skip_set=reference.set_id
                )
            )
            assert got == expected


def _edit_service(**kwargs):
    config = SilkMothConfig(
        similarity=SimilarityKind.EDS, delta=0.4, alpha=0.5
    )
    service = SilkMothService(config, **kwargs)
    for elements in _edit_sets():
        service.add_set(elements)
    return service


def _brute_ids(service, raw_reference):
    reference = service.collection.query_set(raw_reference)
    return sorted(
        r.set_id
        for r in brute_force_search(reference, service.collection, service.config)
    )


class TestServiceInvalidation:
    """The pair cache must not outlive the write generation."""

    def test_queries_populate_and_reuse_the_memo(self):
        service = _edit_service()
        reference = ["silkmoth paper", "related sets"]
        service.search(reference)
        assert len(service.engine.memo) > 0
        first_misses = service.stats.sim_cache_misses
        assert first_misses > 0
        # A distinct (uncached at the result layer) reference sharing
        # elements hits the pair memo.
        service.search(["silkmoth paper", "vldb"])
        assert service.stats.sim_cache_hits > 0

    @pytest.mark.parametrize("mutation", ["add", "remove", "update"])
    def test_mutation_drops_the_pair_cache(self, mutation):
        service = _edit_service()
        reference = ["silkmoth paper", "related sets"]
        service.search(reference)
        assert len(service.engine.memo) > 0
        if mutation == "add":
            service.add_set(["entirely new content", "for the cache"])
        elif mutation == "remove":
            service.remove_set(0)
        else:
            service.update_set(1, ["replacement text", "fresh elements"])
        assert len(service.engine.memo) == 0
        assert service.engine.memo.generation == service.generation
        # Exactness under mutation: the next answer equals brute force.
        results = sorted(r.set_id for r in service.search(reference))
        assert results == _brute_ids(service, reference)

    def test_compaction_drops_the_pair_cache(self):
        service = _edit_service(compact_dead_fraction=1.0)
        reference = ["silkmoth paper", "related sets"]
        service.search(reference)
        service.remove_set(0)
        service.search(reference)  # repopulate after the removal cleared it
        assert len(service.engine.memo) > 0
        assert service.compact() > 0
        assert len(service.engine.memo) == 0
        results = sorted(r.set_id for r in service.search(reference))
        assert results == _brute_ids(service, reference)

    def test_mutation_interleaving_stays_exact(self):
        rng = random.Random(5)
        service = _edit_service()
        references = [
            ["silkmoth paper", "vldb"],
            ["related sets", "maximum matching"],
        ]
        for step in range(12):
            action = rng.randrange(3)
            live = [r.set_id for r in service.collection.iter_live()]
            if action == 0:
                service.add_set(
                    ["txt %d" % step, "maximum matching"]
                )
            elif action == 1 and len(live) > 4:
                service.remove_set(rng.choice(live))
            else:
                service.update_set(
                    rng.choice(live), ["silkmoth papers", "step %d" % step]
                )
            for reference in references:
                got = sorted(r.set_id for r in service.search(reference))
                assert got == _brute_ids(service, reference)
