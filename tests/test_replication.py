"""Shard replication: lockstep replicas, failover, degraded semantics.

The replication claim in test form: with R replicas per shard, killing
any single replica -- or any single shard worker, as long as one
replica of it survives -- is *observably invisible*: search and
discovery stay bit-identical to a single-node oracle fed the same
mutation program.  When every replica of a needed shard is gone, the
cluster fails loudly with :class:`ClusterDegradedError` naming the
lost shards, commits nothing half-way (the coordinator id space never
drifts from what surviving shards hold), and :meth:`revive` rebuilds
the lost replicas from the coordinator's directory.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.cluster import (
    BACKOFF_ENV_VAR,
    DEADLINE_ENV_VAR,
    REPLICAS_ENV_VAR,
    ClusterDegradedError,
    FaultEvent,
    FaultPlan,
    SilkMothCluster,
    resolve_backoff,
    resolve_deadline,
    resolve_replica_count,
)
from repro.core.config import SilkMothConfig
from strategies import collections, token_configs, token_sets

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} backend unavailable"),
    )
    for name in ("python", "numpy")
]

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

DATA = [
    ["ash bay common", "elm fir"],
    ["ash bay elm common", "oak"],
    ["sky yew common", "ivy"],
    ["ash common", "fir elm"],
    ["oak sky common", ""],
    ["bay fir common", "yew"],
]

CONFIG = SilkMothConfig(delta=0.3)

#: A reference overlapping every shard's tokens, so routing cannot
#: skip the shard the test is killing.
BROAD_REFERENCE = ["ash bay common", "oak sky common"]

_mutations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), token_sets()),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=30)),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=30),
            token_sets(),
        ),
    ),
    min_size=1,
    max_size=8,
)


def _oracle_for(sets, config):
    """The single-node identity baseline: one inline shard, R=1.

    A 1-shard cluster runs the plain single-node engine behind an
    in-process transport and is proven bit-identical to it by the
    identity suites in ``test_cluster.py``, while exposing the same
    global-id mutation API as the replicated cluster under test.
    """
    return SilkMothCluster.from_sets(sets, config, shards=1, replicas=1)


def _mirror_mutations(cluster, service, mutations):
    """Apply one program to both sides, resyncing on degraded failures.

    A mutation the cluster refused (``ClusterDegradedError``) committed
    nothing, so the oracle skips it too -- with one documented
    exception: an ``update`` whose tombstone landed before every shard
    refused the append degenerates to a remove, which the oracle then
    mirrors.  Either way both id spaces must agree afterwards.
    """
    for step in mutations:
        live = cluster.live_set_ids()
        target = live[step[1] % len(live)] if step[0] != "add" and live else None
        try:
            if step[0] == "add":
                cluster.add_set(step[1])
            elif target is None:
                continue
            elif step[0] == "remove":
                cluster.remove_set(target)
            else:
                cluster.update_set(target, step[2])
        except ClusterDegradedError:
            if target is not None and not cluster.is_live(target):
                service.remove_set(target)
            continue
        if step[0] == "add":
            service.add_set(step[1])
        elif step[0] == "remove":
            service.remove_set(target)
        else:
            service.update_set(target, step[2])


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(
    sets=collections(min_sets=2, max_sets=6),
    mutations=_mutations,
    reference=token_sets(),
    config=token_configs(),
    shards=st.integers(min_value=1, max_value=3),
    victim=st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=1, max_value=6),
    ),
)
@_SETTINGS
def test_single_replica_kill_is_invisible(
    backend_name, sets, mutations, reference, config, shards, victim
):
    """R=2: killing any one replica mid-program changes no answer.

    The kill lands on a Hypothesis-chosen (shard, replica) after a
    chosen number of operations; whatever it interrupts, every query
    and the final id space must stay bit-identical to the single-node
    oracle, because the sibling replica holds the same state.
    """
    config = replace(config, backend=backend_name, scheme="dichotomy")
    shard, replica, after = victim
    plan = FaultPlan(
        [
            FaultEvent(
                kind="kill_shard",
                shard=shard % shards,
                replica=replica,
                after=after,
            )
        ]
    )
    with _oracle_for(sets, config) as service, SilkMothCluster.from_sets(
        sets, config, shards=shards, replicas=2, fault_plan=plan, backoff=0.0
    ) as cluster:
        _mirror_mutations(cluster, service, mutations)
        assert cluster.lost_shards() == []
        assert cluster.live_set_ids() == service.live_set_ids()
        assert cluster.search(reference) == service.search(reference)
        assert cluster.discover() == service.discover()


def test_failover_retries_on_next_replica():
    """A replica death mid-query fails over and still answers."""
    plan = FaultPlan(
        [FaultEvent(kind="kill_shard", shard=0, replica=0, after=1)]
    )
    with _oracle_for(DATA, CONFIG) as oracle, SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, replicas=2, fault_plan=plan, backoff=0.0
    ) as cluster:
        assert cluster.search(BROAD_REFERENCE) == oracle.search(
            BROAD_REFERENCE
        )
        assert cluster.stats.failovers >= 1
        assert cluster.stats.replicas_lost == 1
        assert cluster.replica_health()[0] == [False, True]
        assert cluster.lost_shards() == []


def test_all_replicas_dead_names_lost_shards():
    """Exhausting every replica of a shard raises ClusterDegradedError."""
    plan = FaultPlan(
        [
            FaultEvent(kind="kill_shard", shard=1, replica=0, after=1),
            FaultEvent(kind="kill_shard", shard=1, replica=1, after=1),
        ]
    )
    with SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, replicas=2, fault_plan=plan, backoff=0.0
    ) as cluster:
        with pytest.raises(ClusterDegradedError) as excinfo:
            cluster.search(BROAD_REFERENCE)
        assert excinfo.value.shards == (1,)
        assert cluster.lost_shards() == [1]
        assert cluster.stats.degraded_failures >= 1
        # A degraded cluster is still a cluster: introspection works and
        # reports the loss instead of raising.
        infos = cluster.shard_infos()
        assert infos[1].get("lost") is True


def test_degraded_mutations_do_not_desync_id_space():
    """Refused mutations leave the coordinator id space untouched.

    The atomicity policy under test: zero replica successes must
    commit *nothing* -- ``live_set_ids`` (and the tombstone set) agree
    with the surviving shards before and after the failure, and after
    :meth:`revive` the whole cluster answers from exactly that state.
    """
    plan = FaultPlan(
        [
            FaultEvent(kind="kill_shard", shard=0, replica=0, after=1),
            FaultEvent(kind="kill_shard", shard=0, replica=1, after=1),
        ]
    )
    with _oracle_for(DATA, CONFIG) as oracle, SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, replicas=2, fault_plan=plan, backoff=0.0
    ) as cluster:
        before = cluster.live_set_ids()
        total_before = cluster.total_sets
        # Global id 0 lives on shard 0 (round-robin placement); the
        # plan kills both its replicas on the remove's submit.
        with pytest.raises(ClusterDegradedError) as excinfo:
            cluster.remove_set(0)
        assert excinfo.value.shards == (0,)
        assert cluster.live_set_ids() == before
        assert cluster.total_sets == total_before
        assert cluster.is_live(0)
        # Adds avoid the lost shard entirely and still commit.
        gid = cluster.add_set(["fresh common set"])
        oracle.add_set(["fresh common set"])
        assert gid == total_before
        assert cluster.placement_of(gid)[0] != 0
        # Revive rebuilds shard 0 from the directory; the set the
        # failed remove targeted is still there, and answers match the
        # oracle (which never saw the refused remove either).
        assert cluster.revive() == 2
        assert cluster.stats.replicas_revived == 2
        assert cluster.live_set_ids() == oracle.live_set_ids()
        assert cluster.search(BROAD_REFERENCE) == oracle.search(
            BROAD_REFERENCE
        )


def test_update_degenerates_to_remove_when_no_shard_takes_the_add():
    """update_set with every shard lost mid-way commits the tombstone.

    The remove applies to the owning shard's replicas first; if *every*
    shard then refuses the append, the tombstone stands (the surviving
    replicas really did drop the old record) and the degraded error
    propagates -- the id space still agrees with the shards.
    """
    # One shard, two replicas: the update's remove succeeds, then both
    # replicas die on the add that follows it.
    plan = FaultPlan(
        [
            FaultEvent(kind="kill_shard", shard=0, replica=0, command="add", after=1),
            FaultEvent(kind="kill_shard", shard=0, replica=1, command="add", after=1),
        ]
    )
    with SilkMothCluster.from_sets(
        DATA[:3], CONFIG, shards=1, replicas=2, fault_plan=plan, backoff=0.0
    ) as cluster:
        total_before = cluster.total_sets
        with pytest.raises(ClusterDegradedError):
            cluster.update_set(0, ["replacement words"])
        # Tombstone committed, no fresh id assigned.
        assert not cluster.is_live(0)
        assert cluster.total_sets == total_before
        assert cluster.revive() == 2
        assert 0 not in cluster.live_set_ids()


def test_revive_rebuilds_lockstep_replicas():
    """A revived replica is in lockstep: killing the survivor after
    revive() must be invisible to queries."""
    plan = FaultPlan(
        [FaultEvent(kind="kill_shard", shard=0, replica=0, after=1)]
    )
    with _oracle_for(DATA, CONFIG) as oracle, SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, replicas=2, fault_plan=plan, backoff=0.0
    ) as cluster:
        cluster.search(BROAD_REFERENCE)  # kills replica (0, 0)
        cluster.add_set(["post kill common"])  # survivor-only mutation
        oracle.add_set(["post kill common"])
        assert cluster.revive() == 1
        # Now kill the original survivor; the revived replica answers.
        cluster._shards[0][1].kill()
        cluster.cache.invalidate()
        assert cluster.search(BROAD_REFERENCE) == oracle.search(
            BROAD_REFERENCE
        )
        assert cluster.discover() == oracle.discover()


def test_replicated_snapshot_round_trip(tmp_path):
    """save/load is replica-agnostic: R=2 state reloads under R=1."""
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, replicas=2
    ) as cluster:
        cluster.add_set(["snapshot witness common"])
        expected = cluster.search(BROAD_REFERENCE)
        cluster.save(manifest)
    loaded = SilkMothCluster.load(manifest, CONFIG, replicas=1)
    try:
        assert loaded.replica_count == 1
        assert loaded.search(BROAD_REFERENCE) == expected
    finally:
        loaded.close()


def test_replica_knob_resolution(monkeypatch):
    """SILKMOTH_REPLICAS / deadline / backoff env knobs resolve."""
    monkeypatch.delenv(REPLICAS_ENV_VAR, raising=False)
    monkeypatch.delenv(DEADLINE_ENV_VAR, raising=False)
    monkeypatch.delenv(BACKOFF_ENV_VAR, raising=False)
    assert resolve_replica_count(None) == 1
    assert resolve_replica_count(3) == 3
    assert resolve_deadline(None) is None
    assert resolve_deadline(0) is None
    assert resolve_deadline(2.5) == 2.5
    assert resolve_backoff(None) == 0.05
    monkeypatch.setenv(REPLICAS_ENV_VAR, "2")
    monkeypatch.setenv(DEADLINE_ENV_VAR, "1.5")
    monkeypatch.setenv(BACKOFF_ENV_VAR, "0.01")
    assert resolve_replica_count(None) == 2
    assert resolve_deadline(None) == 1.5
    assert resolve_backoff(None) == 0.01
    with pytest.raises(ValueError):
        resolve_replica_count(0)
    with pytest.raises(ValueError):
        resolve_backoff(-1.0)


def test_replicated_cluster_info_reports_health():
    """replica_health()/lost_shards() expose the failover state."""
    with SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, replicas=2
    ) as cluster:
        assert cluster.replica_count == 2
        assert cluster.replica_health() == [[True, True], [True, True]]
        assert cluster.lost_shards() == []
        assert cluster.revive() == 0  # nothing to do on a healthy cluster
