"""Dice, cosine and overlap: unit tests and signature-bound soundness.

These are the "other similarity functions in these two categories"
Section 2.1 says SilkMoth can support.  The crucial invariants are the
kind-specific signature bounds in :mod:`repro.signatures.weights`: each
must genuinely upper-bound the similarity of any element sharing at
most ``length - selected`` tokens, otherwise signatures would drop true
results.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SetCollection
from repro.sim.functions import (
    SimilarityFunction,
    SimilarityKind,
    cosine,
    dice,
    jaccard,
    overlap,
)
from repro.signatures.weights import ElementWeights, _sim_thresh_budget

TOKEN_KINDS = [
    SimilarityKind.JACCARD,
    SimilarityKind.DICE,
    SimilarityKind.COSINE,
    SimilarityKind.OVERLAP,
]


class TestDice:
    def test_identical(self):
        assert dice({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert dice({"a"}, {"b"}) == 0.0

    def test_half(self):
        # |inter| = 1, sizes 2 and 2 -> 2*1/4.
        assert dice({"a", "b"}, {"a", "c"}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert dice(set(), set()) == 1.0

    def test_one_empty(self):
        assert dice(set(), {"a"}) == 0.0

    def test_accepts_lists(self):
        assert dice(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_dominates_jaccard(self):
        # Dice >= Jaccard always (2x/(a+b) >= x/(a+b-x)).
        rng = random.Random(5)
        universe = [f"t{i}" for i in range(12)]
        for _ in range(100):
            x = set(rng.sample(universe, rng.randint(1, 8)))
            y = set(rng.sample(universe, rng.randint(1, 8)))
            assert dice(x, y) >= jaccard(x, y) - 1e-12


class TestCosine:
    def test_identical(self):
        assert cosine({"a", "b", "c"}, {"a", "b", "c"}) == 1.0

    def test_disjoint(self):
        assert cosine({"a"}, {"b"}) == 0.0

    def test_simple(self):
        # |inter| = 1, |x| = 1, |y| = 4 -> 1/2.
        assert cosine({"a"}, {"a", "b", "c", "d"}) == pytest.approx(0.5)

    def test_between_jaccard_and_overlap(self):
        rng = random.Random(6)
        universe = [f"t{i}" for i in range(12)]
        for _ in range(100):
            x = set(rng.sample(universe, rng.randint(1, 8)))
            y = set(rng.sample(universe, rng.randint(1, 8)))
            assert jaccard(x, y) - 1e-12 <= cosine(x, y) <= overlap(x, y) + 1e-12


class TestOverlap:
    def test_identical(self):
        assert overlap({"a"}, {"a"}) == 1.0

    def test_subset_is_one(self):
        assert overlap({"a", "b"}, {"a", "b", "c", "d"}) == 1.0

    def test_disjoint(self):
        assert overlap({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert overlap({"a", "b", "c"}, {"a", "x", "y"}) == pytest.approx(1 / 3)


class TestKindProperties:
    def test_token_based_flags(self):
        for kind in TOKEN_KINDS:
            assert kind.is_token_based
            assert not kind.is_edit_based

    def test_reduction_support(self):
        assert SimilarityKind.JACCARD.supports_reduction
        assert SimilarityKind.EDS.supports_reduction
        for kind in (
            SimilarityKind.DICE,
            SimilarityKind.COSINE,
            SimilarityKind.OVERLAP,
            SimilarityKind.NEDS,
        ):
            assert not kind.supports_reduction

    def test_dice_dual_violates_triangle_inequality(self):
        # Witness that 1 - dice is not a metric, justifying the
        # reduction restriction: d(x,z) > d(x,y) + d(y,z).
        x = {"a"}
        y = {"a", "b"}
        z = {"b"}
        d_xz = 1 - dice(x, z)
        d_xy = 1 - dice(x, y)
        d_yz = 1 - dice(y, z)
        assert d_xz > d_xy + d_yz

    def test_overlap_dual_violates_triangle_inequality(self):
        x = {"a"}
        y = {"a", "b"}
        z = {"b"}
        assert 1 - overlap(x, z) > (1 - overlap(x, y)) + (1 - overlap(y, z))

    def test_raw_tokens_dispatch(self):
        x, y = {"a", "b"}, {"a", "c"}
        assert SimilarityFunction(SimilarityKind.DICE).raw_tokens(x, y) == dice(x, y)
        assert SimilarityFunction(SimilarityKind.COSINE).raw_tokens(x, y) == cosine(
            x, y
        )
        assert SimilarityFunction(SimilarityKind.OVERLAP).raw_tokens(x, y) == overlap(
            x, y
        )

    def test_raw_tokens_rejects_edit_kinds(self):
        with pytest.raises(ValueError):
            SimilarityFunction(SimilarityKind.EDS).raw_tokens({"a"}, {"a"})

    def test_strings_interface_splits_words(self):
        phi = SimilarityFunction(SimilarityKind.DICE)
        assert phi("a b", "a c") == pytest.approx(0.5)


def _token_sim(kind: SimilarityKind, x: set, y: set) -> float:
    return SimilarityFunction(kind).raw_tokens(x, y)


class TestBoundSoundness:
    """The weighted bound must dominate the true similarity.

    For element r with ``selected`` signature tokens removed from play,
    any s sharing none of the selected tokens shares at most
    ``len(r) - selected`` tokens with r.  We enumerate adversarial s
    (all subsets of the remainder, padded with fresh tokens) and check
    ``phi(r, s) <= bound``.
    """

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    def test_bound_dominates_all_adversaries(self, kind):
        rng = random.Random(11)
        for trial in range(40):
            length = rng.randint(1, 6)
            r = {f"t{i}" for i in range(length)}
            selected = rng.randint(0, length)
            remainder = sorted(r)[: length - selected]
            weights = ElementWeights(
                kind=kind, length=length, n_tokens=length, budget=1 << 60
            )
            bound = weights.bound(selected)
            # Adversarial s: any subset of the remainder plus fresh tokens.
            for mask in range(1 << len(remainder)):
                shared = {
                    tok for b, tok in enumerate(remainder) if mask >> b & 1
                }
                for extra in (0, 1, 3):
                    s = shared | {f"fresh{trial}_{k}" for k in range(extra)}
                    if not s:
                        continue
                    assert _token_sim(kind, r, s) <= bound + 1e-9, (
                        kind,
                        length,
                        selected,
                        s,
                    )

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    def test_bound_monotone_nonincreasing(self, kind):
        weights = ElementWeights(kind=kind, length=8, n_tokens=8, budget=1 << 60)
        bounds = [weights.bound(k) for k in range(9)]
        for a, b in zip(bounds, bounds[1:]):
            assert b <= a + 1e-12

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    def test_full_selection_bound_zero(self, kind):
        weights = ElementWeights(kind=kind, length=5, n_tokens=5, budget=1 << 60)
        assert weights.bound(5) == 0.0


class TestSimThreshBudgets:
    """Selecting ``budget`` tokens must force non-matching sims below alpha."""

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7, 0.9])
    def test_budget_forces_below_alpha(self, kind, alpha):
        for length in range(1, 9):
            budget = _sim_thresh_budget(kind, length, alpha)
            assert 1 <= budget <= length, (kind, length, alpha, budget)
            # Any s sharing at most length - budget tokens of r must
            # score < alpha; the adversarial best is s = exactly the
            # shared tokens (maximises every token-based sim).
            max_shared = length - budget
            r = {f"t{i}" for i in range(length)}
            if max_shared == 0:
                continue  # any disjoint s scores 0 < alpha
            s = {f"t{i}" for i in range(max_shared)}
            assert _token_sim(kind, r, s) < alpha, (kind, length, alpha)

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7, 0.9])
    def test_budget_minimal(self, kind, alpha):
        # One fewer token than the budget admits an adversary reaching
        # alpha -- except for kinds whose budget formula is conservative
        # (only Jaccard and overlap budgets are exactly tight).
        if kind not in (SimilarityKind.JACCARD, SimilarityKind.OVERLAP):
            pytest.skip("budget tightness is only guaranteed for Jaccard/overlap")
        for length in range(1, 9):
            budget = _sim_thresh_budget(kind, length, alpha)
            if budget <= 1:
                continue
            max_shared = length - (budget - 1)
            r = {f"t{i}" for i in range(length)}
            s = {f"t{i}" for i in range(max_shared)}
            assert _token_sim(kind, r, s) >= alpha - 1e-9, (kind, length, alpha)


@settings(max_examples=60, deadline=None)
@given(
    data=st.data(),
    kind=st.sampled_from(TOKEN_KINDS),
)
def test_property_symmetry_and_range(data, kind):
    universe = [f"w{i}" for i in range(10)]
    x = set(data.draw(st.lists(st.sampled_from(universe), max_size=8)))
    y = set(data.draw(st.lists(st.sampled_from(universe), max_size=8)))
    sim = _token_sim(kind, x, y) if x or y else 1.0
    assert 0.0 <= sim <= 1.0 + 1e-12
    if x and y:
        assert sim == pytest.approx(_token_sim(kind, y, x))
        if x == y:
            assert sim == pytest.approx(1.0)
