"""Unit tests for the tracing layer (:mod:`repro.obs.trace`).

Covers the zero-cost disabled path, span nesting and attribute
capture, cross-process context propagation via ``collect_remote`` /
``ingest``, the JSONL export round-trip and the flame renderer.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    _NOOP_CTX,
    collect_remote,
    current_context,
    export_jsonl,
    export_path,
    format_flame,
    get_tracer,
    ingest,
    load_jsonl,
    set_trace_enabled,
    span,
    trace_enabled,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    """Drain the buffer and restore env-driven enablement per test."""
    get_tracer().drain()
    yield
    set_trace_enabled(None)
    get_tracer().drain()


class TestDisabled:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("SILKMOTH_TRACE", raising=False)
        set_trace_enabled(None)
        assert not trace_enabled()

    def test_disabled_span_is_the_shared_noop(self):
        set_trace_enabled(False)
        ctx_a = span("pipeline.pass", backend="python")
        ctx_b = span("stage.verify")
        # Zero-allocation contract: every disabled call returns the
        # same singleton object.
        assert ctx_a is ctx_b is _NOOP_CTX
        with ctx_a as handle:
            handle.set_attr("ignored", 1)  # must not raise
        assert get_tracer().drain() == []

    def test_disabled_current_context_is_none(self):
        set_trace_enabled(False)
        assert current_context() is None


class TestEnabled:
    def test_nested_spans_share_a_trace_and_parent(self):
        set_trace_enabled(True)
        with span("service.query") as outer:
            outer.set_attr("cache", "miss")
            with span("pipeline.pass", backend="python"):
                pass
        spans = get_tracer().drain()
        assert [s["name"] for s in spans] == ["pipeline.pass", "service.query"]
        inner, outer_span = spans
        assert inner["trace_id"] == outer_span["trace_id"]
        assert inner["parent_id"] == outer_span["span_id"]
        assert outer_span["parent_id"] is None
        assert outer_span["attrs"]["cache"] == "miss"
        assert inner["attrs"]["backend"] == "python"
        assert inner["wall_seconds"] >= 0
        assert inner["cpu_seconds"] >= 0

    def test_sibling_roots_get_distinct_traces(self):
        set_trace_enabled(True)
        with span("a"):
            pass
        with span("b"):
            pass
        spans = get_tracer().drain()
        assert spans[0]["trace_id"] != spans[1]["trace_id"]

    def test_current_context_points_at_open_span(self):
        set_trace_enabled(True)
        assert current_context() is None
        with span("outer"):
            trace_id, span_id = current_context()
            with span("inner"):
                inner_trace, inner_span = current_context()
            assert inner_trace == trace_id
            assert inner_span != span_id
        assert current_context() is None


class TestRemotePropagation:
    def test_collect_remote_parents_under_the_given_context(self):
        set_trace_enabled(False)  # remote side: tracing off locally
        ctx = ("coordinator-trace", "coordinator-span")
        with collect_remote(ctx) as shipped:
            with span("shard.search", live_sets=3):
                pass
        # Force-enabled for the pass, restored afterwards.
        assert not trace_enabled()
        assert len(shipped) == 1
        assert shipped[0]["trace_id"] == "coordinator-trace"
        assert shipped[0]["parent_id"] == "coordinator-span"
        # Shipped spans were *moved* out of the local buffer: an inline
        # transport must not double-report them.
        assert get_tracer().drain() == []

    def test_collect_remote_without_context_is_passive(self):
        set_trace_enabled(False)
        with collect_remote(None) as shipped:
            with span("shard.search"):
                pass
        assert shipped == []
        assert get_tracer().drain() == []

    def test_ingest_feeds_the_export_buffer(self):
        payload = {
            "trace_id": "t",
            "span_id": "s",
            "parent_id": None,
            "name": "shard.search",
            "attrs": {},
            "wall_seconds": 0.1,
            "cpu_seconds": 0.1,
            "pid": 12345,
        }
        ingest([payload])
        assert get_tracer().drain() == [payload]


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        set_trace_enabled(True)
        with span("service.query"):
            with span("cache.probe"):
                pass
        path = tmp_path / "trace.jsonl"
        count = export_jsonl(path)
        assert count == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert {"trace_id", "span_id", "name", "wall_seconds"} <= set(record)
        assert load_jsonl(path) == [json.loads(line) for line in lines]
        # Export drains: a second export writes an empty file.
        assert export_jsonl(path) == 0

    def test_export_path_reads_env(self, monkeypatch):
        monkeypatch.delenv("SILKMOTH_TRACE_EXPORT", raising=False)
        assert export_path() is None
        monkeypatch.setenv("SILKMOTH_TRACE_EXPORT", "/tmp/t.jsonl")
        assert export_path() == "/tmp/t.jsonl"

    def test_format_flame_indents_children(self):
        set_trace_enabled(True)
        with span("cluster.query", shards=2):
            with span("cluster.collect"):
                pass
        text = format_flame(get_tracer().drain())
        lines = text.splitlines()
        assert any(line.startswith("trace ") for line in lines)
        query_line = next(l for l in lines if "cluster.query" in l)
        collect_line = next(l for l in lines if "cluster.collect" in l)
        assert "shards=2" in query_line
        indent = len(collect_line) - len(collect_line.lstrip())
        assert indent > len(query_line) - len(query_line.lstrip())
