"""The explain API: stage verdicts must agree with the real pipeline."""

import random

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.explain import explain, format_explanation
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind


@pytest.fixture(scope="module")
def engine():
    rng = random.Random(21)
    vocab = [f"w{i}" for i in range(12)]
    sets = []
    for _ in range(20):
        sets.append(
            [
                " ".join(rng.sample(vocab, rng.randint(1, 4)))
                for _ in range(rng.randint(1, 4))
            ]
        )
    for i in range(0, 18, 3):
        sets[i + 1] = list(sets[i])
    collection = SetCollection.from_strings(sets)
    config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.6)
    return SilkMoth(collection, config)


class TestExplainConsistency:
    def test_verdicts_match_search(self, engine):
        for reference in engine.collection:
            related = {
                r.set_id
                for r in engine.search(reference, skip_set=reference.set_id)
            }
            for candidate_id in range(len(engine.collection)):
                if candidate_id == reference.set_id:
                    continue
                result = explain(engine, reference, candidate_id)
                assert result.related == (candidate_id in related), (
                    reference.set_id,
                    candidate_id,
                )

    def test_related_candidates_survive_all_stages(self, engine):
        reference = engine.collection[0]
        for r in engine.search(reference, skip_set=0):
            result = explain(engine, reference, r.set_id)
            assert result.survives == ("signature", "check", "nn", "verify")

    def test_score_matches_search_score(self, engine):
        reference = engine.collection[0]
        for r in engine.search(reference, skip_set=0):
            result = explain(engine, reference, r.set_id)
            assert result.score == pytest.approx(r.score)
            assert result.relatedness == pytest.approx(r.relatedness)

    def test_estimates_dominate_score(self, engine):
        # Both filter estimates are upper bounds on the true score.
        reference = engine.collection[3]
        for candidate_id in range(len(engine.collection)):
            if candidate_id == 3:
                continue
            result = explain(engine, reference, candidate_id)
            if result.signature_tokens is None:
                continue
            assert result.check_estimate >= result.score - 1e-9
            assert result.nn_estimate >= result.score - 1e-9

    def test_nn_estimate_tighter_than_check(self, engine):
        reference = engine.collection[3]
        for candidate_id in range(len(engine.collection)):
            if candidate_id == 3:
                continue
            result = explain(engine, reference, candidate_id)
            if result.signature_tokens is None:
                continue
            assert result.nn_estimate <= result.check_estimate + 1e-9

    def test_alignment_sums_to_score(self, engine):
        reference = engine.collection[0]
        result = explain(engine, reference, 1)
        assert sum(p.weight for p in result.alignment) == pytest.approx(
            result.score
        )


class TestFormatExplanation:
    def test_renders_related(self, engine):
        reference = engine.collection[0]
        result = explain(engine, reference, 1)
        text = format_explanation(result, engine, reference)
        assert "reference set 0 vs candidate set 1" in text
        assert "matching score" in text
        assert ("RELATED" in text) == result.related

    def test_renders_alignment_lines(self, engine):
        reference = engine.collection[0]
        result = explain(engine, reference, 1)
        text = format_explanation(result, engine, reference)
        if result.alignment:
            assert "<->" in text

    def test_edit_similarity_explain(self):
        sets = [["silkmoth"], ["silkmoth"], ["different"]]
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS, delta=0.8, alpha=0.7
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=config.effective_q
        )
        engine = SilkMoth(collection, config)
        result = explain(engine, collection[0], 1)
        assert result.related
        text = format_explanation(result, engine, collection[0])
        assert "RELATED" in text
