"""Routing soundness: a skipped shard provably had nothing to say.

The router may only skip a shard when the pair-level certificate holds
(zero shared index tokens force ``phi_alpha = 0``); these tests verify
both halves of that contract on randomized data:

* every skipped shard shares **no** token hash with the reference (and
  no empty-element pairing), and
* brute force over the skipped shard's live sets confirms the shard
  would have contributed zero results.

Plus the unit behaviour of the summaries themselves -- exact sets,
Bloom filters (false positives allowed, false negatives never), the
empty-element flag, and the certificate predicate per configuration.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_search
from repro.cluster import SilkMothCluster, routing_certificate_holds
from repro.cluster.routing import (
    BloomTokenSummary,
    ExactTokenSummary,
    ShardSummary,
    element_token_hashes,
    make_token_summary,
    reference_probe,
    resolve_summary_bits,
    token_hash,
)
from repro.core.config import SilkMothConfig
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind
from repro.tokenize.tokenizers import Tokenizer
from strategies import collections, token_configs, token_sets

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    sets=collections(min_sets=1, max_sets=8),
    reference=token_sets(),
    config=token_configs(),
    shards=st.integers(min_value=2, max_value=4),
    summary_bits=st.sampled_from([0, 256]),
)
@_SETTINGS
def test_skipped_shards_provably_empty(
    sets, reference, config, shards, summary_bits
):
    """Skipped shard => zero token overlap => brute force finds nothing."""
    with SilkMothCluster.from_sets(
        sets, config, shards=shards, summary_bits=summary_bits
    ) as cluster:
        cluster.search(reference)
        routed = {k for k, _ in cluster.last_pass.per_shard}
        skipped = set(range(cluster.n_shards)) - routed
        if not reference:
            return
        tokenizer = Tokenizer(kind=config.similarity, q=config.effective_q)
        probe = reference_probe(tokenizer, reference)
        for k in skipped:
            shard_sets = [
                list(cluster.raw_set(gid))
                for gid in cluster.live_set_ids()
                if cluster.placement_of(gid)[0] == k
            ]
            # (1) zero signature/token overlap with the skipped shard.
            shard_hashes, shard_empty = set(), False
            for elements in shard_sets:
                hashes, has_empty = element_token_hashes(tokenizer, elements)
                shard_hashes |= hashes
                shard_empty = shard_empty or has_empty
            assert not (shard_hashes & probe.hashes)
            assert not (probe.has_empty and shard_empty)
            # (2) brute force over the shard agrees: nothing related.
            shard_collection = SetCollection.from_strings(
                shard_sets, kind=config.similarity, q=config.effective_q
            )
            shard_reference = shard_collection.query_set(reference)
            assert (
                brute_force_search(shard_reference, shard_collection, config)
                == []
            )


def test_certificate_predicate_per_configuration():
    """Token kinds always qualify; edit kinds only above the gram cap."""
    assert routing_certificate_holds(SilkMothConfig())  # jaccard
    assert routing_certificate_holds(
        SilkMothConfig(similarity=SimilarityKind.OVERLAP, alpha=0.0)
    )
    # NEds at q=1: the no-share cap is 0, so any alpha qualifies.
    assert routing_certificate_holds(
        SilkMothConfig(similarity=SimilarityKind.NEDS, alpha=0.0, q=1)
    )
    # Eds at q=1 caps at 1/3: alpha must clear it.
    assert routing_certificate_holds(
        SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.6, q=1)
    )
    assert not routing_certificate_holds(
        SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.0, q=1)
    )
    # q=2 caps at 2/3 for both edit kinds.
    assert not routing_certificate_holds(
        SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.6, q=2)
    )
    assert routing_certificate_holds(
        SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.8, q=2)
    )


def test_broadcast_without_certificate():
    """Edit similarity with alpha=0 must fan out to every shard.

    Two strings can have positive edit similarity while sharing no
    q-gram at all (e.g. a reversal), so no token summary can rule a
    shard out; the router must broadcast.
    """
    config = SilkMothConfig(
        similarity=SimilarityKind.EDS, alpha=0.0, delta=0.1, q=1
    )
    sets = [["abcde"], ["edcba"], ["zzzzz"]]
    with SilkMothCluster.from_sets(sets, config, shards=3) as cluster:
        assert not cluster.routing_enabled
        results = cluster.search(["abcde"])
        assert cluster.last_pass.shards_routed == 3
        # The zero-gram-overlap pair is genuinely related here.
        assert 1 in {r.set_id for r in results}


def test_exact_summary_membership():
    """Exact summaries have neither false positives nor negatives."""
    summary = ExactTokenSummary()
    summary.add(token_hash("ash"))
    assert summary.might_contain(token_hash("ash"))
    assert not summary.might_contain(token_hash("oak"))
    assert summary.kind == "exact"
    assert len(summary) == 1


def test_bloom_summary_no_false_negatives():
    """Every added token is always reported present."""
    summary = BloomTokenSummary(bits=64)
    hashes = [token_hash(f"token{i}") for i in range(50)]
    for value in hashes:
        summary.add(value)
    assert all(summary.might_contain(value) for value in hashes)
    assert summary.kind == "bloom"


def test_bloom_false_positives_only_over_route():
    """An undersized Bloom summary routes extra shards, never fewer."""
    config = SilkMothConfig(delta=0.3)
    sets = [["ash bay"], ["oak sky"], ["ivy yew"], ["elm fir"]]
    with SilkMothCluster.from_sets(
        sets, config, shards=2, summary_bits=0
    ) as exact:
        with SilkMothCluster.from_sets(
            sets, config, shards=2, summary_bits=8
        ) as bloom:
            for reference in (["ash bay"], ["oak"], ["nothing shared"]):
                assert bloom.search(reference) == exact.search(reference)
                assert (
                    bloom.last_pass.shards_routed
                    >= exact.last_pass.shards_routed
                )


def test_empty_element_pairing_routes():
    """A reference with an empty element reaches shards holding one."""
    config = SilkMothConfig(delta=0.3)
    # Round-robin placement: shard 0 holds the empty element, shard 1
    # holds only tokens the reference does not share.
    sets = [["ash", ""], ["oak sky"]]
    with SilkMothCluster.from_sets(sets, config, shards=2) as cluster:
        results = cluster.search(["", "zzz unknown"])
        assert cluster.last_pass.shards_routed == 1
        assert 0 in {r.set_id for r in results}


def test_summary_rebuild_tightens_after_compaction():
    """Removing a set leaves the summary stale-sound until compact()."""
    config = SilkMothConfig(delta=0.3)
    # cache_capacity=0: every search below must actually consult the
    # router (a cached answer would freeze last_pass).
    with SilkMothCluster.from_sets(
        [["unique token"], ["other words"]], config, shards=1, cache_capacity=0
    ) as cluster:
        probe_elements = ["unique"]
        cluster.search(probe_elements)
        assert cluster.last_pass.shards_routed == 1
        cluster.remove_set(0)
        # Stale summary still routes (sound, just not tight)...
        cluster.search(probe_elements)
        assert cluster.last_pass.shards_routed == 1
        assert cluster.search(probe_elements) == []
        cluster.compact()
        # ...and the rebuilt summary skips the shard outright.
        cluster.search(probe_elements)
        assert cluster.last_pass.shards_routed == 0


def test_summary_bits_knob_resolution(monkeypatch):
    """SILKMOTH_SHARD_SUMMARY_BITS sizes summaries; 0 means exact."""
    monkeypatch.delenv("SILKMOTH_SHARD_SUMMARY_BITS", raising=False)
    assert resolve_summary_bits(None) == 0
    assert resolve_summary_bits(128) == 128
    monkeypatch.setenv("SILKMOTH_SHARD_SUMMARY_BITS", "512")
    assert resolve_summary_bits(None) == 512
    with pytest.raises(ValueError):
        resolve_summary_bits(-1)
    assert make_token_summary(0).kind == "exact"
    assert make_token_summary(512).kind == "bloom"
    with pytest.raises(ValueError):
        BloomTokenSummary(bits=4)


def test_shard_summary_may_answer():
    """ShardSummary combines token intersection with the empty flag."""
    summary = ShardSummary(make_token_summary(0))
    summary.add_set_tokens([token_hash("ash")], has_empty=False)
    tokenizer = Tokenizer(kind=SimilarityKind.JACCARD)
    assert summary.may_answer(reference_probe(tokenizer, ["ash oak"]))
    assert not summary.may_answer(reference_probe(tokenizer, ["oak"]))
    assert not summary.may_answer(reference_probe(tokenizer, [""]))
    summary.add_set_tokens([], has_empty=True)
    assert summary.may_answer(reference_probe(tokenizer, [""]))
