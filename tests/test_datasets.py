"""Unit tests for the synthetic dataset generators."""

import random

import pytest

from repro.datasets.dblp import dblp_like_titles
from repro.datasets.text import ZipfVocabulary, corrupt_string, corrupt_tokens
from repro.datasets.webtable import webtable_like_columns, webtable_like_schemas
from repro.sim.levenshtein import levenshtein


class TestZipfVocabulary:
    def test_size(self):
        vocab = ZipfVocabulary(size=100, seed=1)
        assert len(vocab.words) == 100
        assert len(set(vocab.words)) == 100

    def test_deterministic(self):
        a = ZipfVocabulary(size=50, seed=3)
        b = ZipfVocabulary(size=50, seed=3)
        assert a.words == b.words

    def test_skewed_sampling(self):
        vocab = ZipfVocabulary(size=200, seed=5, exponent=1.2)
        rng = random.Random(0)
        draws = [vocab.sample(rng) for _ in range(3000)]
        counts = {}
        for word in draws:
            counts[word] = counts.get(word, 0) + 1
        top = max(counts.values())
        # The head of a Zipf distribution dominates a uniform draw.
        assert top > 3000 / 200 * 4

    def test_sample_many_distinct(self):
        vocab = ZipfVocabulary(size=50, seed=2)
        rng = random.Random(1)
        words = vocab.sample_many(rng, 20)
        assert len(words) == 20
        assert len(set(words)) == 20


class TestCorruption:
    def test_corrupt_string_edits_bounded(self):
        rng = random.Random(9)
        for _ in range(50):
            original = "publication"
            noisy = corrupt_string(original, rng, edits=2)
            assert levenshtein(original, noisy) <= 2

    def test_corrupt_string_empty(self):
        rng = random.Random(9)
        assert len(corrupt_string("", rng, edits=1)) == 1

    def test_corrupt_tokens_never_empty(self):
        rng = random.Random(4)
        vocab = ZipfVocabulary(size=30, seed=4)
        for _ in range(50):
            noisy = corrupt_tokens(["one"], rng, vocab, 0.5, 0.9, 0.0)
            assert noisy


class TestDblpLike:
    def test_count_and_shape(self):
        titles = dblp_like_titles(100, seed=1, words_per_title=9)
        assert len(titles) == 100
        assert all(len(t) == 9 for t in titles)

    def test_deterministic(self):
        assert dblp_like_titles(50, seed=2) == dblp_like_titles(50, seed=2)

    def test_different_seeds_differ(self):
        assert dblp_like_titles(50, seed=2) != dblp_like_titles(50, seed=3)

    def test_contains_near_duplicates(self):
        titles = dblp_like_titles(60, seed=5, duplicate_fraction=0.5)
        # At least one pair of titles must share most of their words.
        best_overlap = 0
        for i in range(len(titles)):
            for j in range(i + 1, len(titles)):
                a, b = set(titles[i]), set(titles[j])
                overlap = len(a & b) / max(len(a | b), 1)
                best_overlap = max(best_overlap, overlap)
        assert best_overlap > 0.5

    def test_zero_sets(self):
        assert dblp_like_titles(0) == []


class TestWebtableLike:
    def test_schemas_shape(self):
        schemas = webtable_like_schemas(80, seed=1, columns_per_schema=3)
        assert len(schemas) == 80
        assert all(len(s) == 3 for s in schemas)

    def test_schemas_token_counts(self):
        schemas = webtable_like_schemas(40, seed=2, values_per_column=11)
        lengths = [len(col.split()) for schema in schemas for col in schema]
        assert sum(lengths) / len(lengths) == pytest.approx(11, abs=3)

    def test_columns_shape(self):
        columns = webtable_like_columns(60, seed=3, values_per_column=22)
        assert len(columns) == 60
        sizes = [len(c) for c in columns]
        assert max(sizes) > min(sizes)  # supersets and subsets both exist

    def test_columns_contain_subset_pairs(self):
        columns = webtable_like_columns(40, seed=4, containment_fraction=0.5)
        found = False
        for i in range(len(columns)):
            for j in range(len(columns)):
                if i == j or len(columns[i]) >= len(columns[j]):
                    continue
                small, big = set(columns[i]), set(columns[j])
                if len(small & big) >= 0.5 * len(small):
                    found = True
        assert found

    def test_deterministic(self):
        assert webtable_like_columns(30, seed=6) == webtable_like_columns(30, seed=6)
