"""The adaptive query planner: validity lemmas, fallback, cost model.

The centrepiece is the regression suite for the latent
out-of-constraint-q exactness hole (ROADMAP, reproduced on 567d385):
under edit similarity, the prefix-style signature schemes can silently
miss related sets whenever a pair with ``phi_alpha > 0`` can share no
q-gram.  Each regression case below is a concrete dataset where the
pre-planner pipeline (signature stage forced on) returns the wrong
answer; the planner must instead route the pass through the exact
full-scan fallback and report that decision.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backends import available_backends
from repro.baselines.brute_force import brute_force_search
from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.pipeline.stages import (
    CandidateSelectStage,
    CheckFilterStage,
    NNFilterStage,
    SignatureStage,
    VerifyStage,
)
from repro.planner import (
    BOUND_SCHEMES,
    PREFIX_SCHEMES,
    IndexProfile,
    max_prefix_valid_q,
    no_share_similarity_cap,
    plan_query,
    prefix_scheme_valid,
    q_constraint_satisfied,
    scheme_family,
    signature_scheme_valid,
)
from repro.service import SilkMothService
from repro.sim.functions import SimilarityKind

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} backend unavailable"),
    )
    for name in ("python", "numpy")
]


# ----------------------------------------------------------------------
# Validity lemmas
# ----------------------------------------------------------------------
class TestValidityLemmas:
    def test_token_kinds_have_no_cap(self):
        for kind in (SimilarityKind.JACCARD, SimilarityKind.OVERLAP):
            assert no_share_similarity_cap(kind, 1) == 0.0

    def test_q1_caps_are_tight(self):
        # No shared character forces LD >= max(|x|, |y|).
        assert no_share_similarity_cap(SimilarityKind.NEDS, 1) == 0.0
        assert no_share_similarity_cap(SimilarityKind.EDS, 1) == pytest.approx(
            1.0 / 3.0
        )

    def test_large_q_cap_is_section_71(self):
        for kind in (SimilarityKind.EDS, SimilarityKind.NEDS):
            assert no_share_similarity_cap(kind, 3) == pytest.approx(0.75)

    def test_cap_achievable(self):
        # eds("cdcd", "abab") = 1/3 with no shared 1-gram: the q=1 Eds
        # cap is attained, so alpha = 1/3 must still count as invalid.
        from repro.sim.functions import eds

        assert eds("cdcd", "abab") == pytest.approx(1.0 / 3.0)
        assert not prefix_scheme_valid(SimilarityKind.EDS, 1.0 / 3.0, 1)
        assert prefix_scheme_valid(SimilarityKind.EDS, 0.35, 1)

    def test_paper_constraint(self):
        assert q_constraint_satisfied(0.85, 5)
        assert not q_constraint_satisfied(0.8, 4)  # limit is exactly 4
        assert not q_constraint_satisfied(0.5, 2)
        assert not q_constraint_satisfied(0.5, 1)  # limit is exactly 1

    def test_bound_family_always_valid(self):
        for scheme in BOUND_SCHEMES:
            assert scheme_family(scheme) == "bound"
            assert signature_scheme_valid(
                scheme, SimilarityKind.EDS, alpha=0.0, q=5
            )

    def test_prefix_family_gated(self):
        for scheme in PREFIX_SCHEMES:
            assert scheme_family(scheme) == "prefix"
            assert not signature_scheme_valid(
                scheme, SimilarityKind.EDS, alpha=0.5, q=2
            )
            assert signature_scheme_valid(
                scheme, SimilarityKind.EDS, alpha=0.85, q=5
            )

    def test_neds_q1_valid_for_any_alpha(self):
        assert prefix_scheme_valid(SimilarityKind.NEDS, 0.0, 1)

    def test_max_prefix_valid_q(self):
        assert max_prefix_valid_q(SimilarityKind.EDS, 0.85) == 5
        assert max_prefix_valid_q(SimilarityKind.EDS, 0.5) == 1
        assert max_prefix_valid_q(SimilarityKind.EDS, 0.2) is None
        assert max_prefix_valid_q(SimilarityKind.NEDS, 0.0) == 1
        assert max_prefix_valid_q(SimilarityKind.JACCARD, 0.0) == 1

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown signature scheme"):
            scheme_family("prefix_tree")


# ----------------------------------------------------------------------
# Regression: the out-of-constraint exactness hole
# ----------------------------------------------------------------------
#: (sets, metric, kind, scheme, delta, alpha, q) tuples on which the
#: pre-planner pipeline provably returns the wrong answer (verified by
#: forcing the signature stage back on in
#: ``test_old_signature_path_was_wrong``).
REGRESSIONS = [
    pytest.param(
        [["c", "ab"], ["ca", "cbcbc", "abac"], [], [], ["ca", "cb", ""]],
        Relatedness.CONTAINMENT,
        SimilarityKind.EDS,
        "unweighted",
        0.4,
        0.5,
        2,
        id="alpha05-q2-containment",
    ),
    pytest.param(
        [["cc", "baa", "b"], [], ["cb", "b"], ["aacb"], ["babac"]],
        Relatedness.SIMILARITY,
        SimilarityKind.EDS,
        "unweighted",
        0.4,
        0.5,
        2,
        id="alpha05-q2-similarity",
    ),
    pytest.param(
        [["cdcd"], ["c"], ["abab"], ["cdcd", "cd"], ["cdcd", "c"]],
        Relatedness.CONTAINMENT,
        SimilarityKind.EDS,
        "comb_unweighted",
        0.3,
        0.0,
        1,
        id="eds-q1-alpha0",
    ),
]


def _build(sets, metric, kind, scheme, delta, alpha, q, backend=None):
    config = SilkMothConfig(
        metric=metric,
        similarity=kind,
        delta=delta,
        alpha=alpha,
        q=q,
        scheme=scheme,
        backend=backend,
    )
    collection = SetCollection.from_strings(sets, kind=kind, q=q)
    return SilkMoth(collection, config), config


class TestRegression:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize(
        "sets,metric,kind,scheme,delta,alpha,q", REGRESSIONS
    )
    def test_out_of_constraint_q_matches_brute_force(
        self, backend_name, sets, metric, kind, scheme, delta, alpha, q
    ):
        engine, config = _build(
            sets, metric, kind, scheme, delta, alpha, q, backend=backend_name
        )
        reference = engine.collection[0]
        got, stats = engine.search_with_stats(reference, skip_set=0)
        expected = brute_force_search(
            reference, engine.collection, config, skip_set=0
        )
        assert sorted(r.set_id for r in got) == sorted(
            r.set_id for r in expected
        )
        # ... and the fallback decision is visible everywhere.
        assert engine.decision.full_scan
        assert not engine.decision.signature_valid
        assert stats.full_scan
        assert "full-scan fallback" in stats.fallback_reason
        assert engine.stats.planner_fallbacks == 1
        report = engine.plan(reference, skip_set=0).describe()
        assert "FULL SCAN" in report
        assert "NOT provable" in report

    @pytest.mark.parametrize(
        "sets,metric,kind,scheme,delta,alpha,q", REGRESSIONS
    )
    def test_old_signature_path_was_wrong(
        self, sets, metric, kind, scheme, delta, alpha, q
    ):
        """The pinned datasets really do trigger the pre-planner bug."""
        engine, config = _build(sets, metric, kind, scheme, delta, alpha, q)
        reference = engine.collection[0]
        plan = engine.plan(reference, skip_set=0)
        forced = dataclasses.replace(
            plan,
            stages=(
                SignatureStage(enabled=True),
                CandidateSelectStage(),
                CheckFilterStage(enabled=config.check_filter),
                NNFilterStage(enabled=config.nn_filter),
                VerifyStage(),
            ),
        )
        got, _ = forced.execute()
        expected = brute_force_search(
            reference, engine.collection, config, skip_set=0
        )
        assert sorted(r.set_id for r in got) != sorted(
            r.set_id for r in expected
        ), "dataset no longer reproduces the pre-planner bug"

    @pytest.mark.parametrize(
        "scheme", sorted(BOUND_SCHEMES - {"sim_thresh", "random"})
    )
    def test_bound_schemes_stay_signature_based(self, scheme):
        """alpha=0.5, q=2 under a bound-family scheme: no fallback, exact."""
        sets, metric, kind, _, delta, alpha, q = (
            [["cc", "baa", "b"], [], ["cb", "b"], ["aacb"], ["babac"]],
            Relatedness.SIMILARITY,
            SimilarityKind.EDS,
            None,
            0.4,
            0.5,
            2,
        )
        engine, config = _build(sets, metric, kind, scheme, delta, alpha, q)
        assert engine.decision.signature_valid
        assert not engine.decision.full_scan
        reference = engine.collection[0]
        got = engine.search(reference, skip_set=0)
        expected = brute_force_search(
            reference, engine.collection, config, skip_set=0
        )
        assert sorted(r.set_id for r in got) == sorted(
            r.set_id for r in expected
        )

    def test_caller_supplied_scheme_is_gated_by_its_own_name(self):
        """QueryPlan.build judges the scheme that will actually run.

        A caller handing build() a prefix-family scheme instance while
        config.scheme names a bound-family scheme must still get the
        fallback -- otherwise the exactness gate could be bypassed.
        """
        from repro.pipeline.plan import QueryPlan
        from repro.signatures import get_scheme

        sets, metric, kind, _, delta, alpha, q = REGRESSIONS[1].values[:7]
        engine, config = _build(sets, metric, kind, "dichotomy", delta, alpha, q)
        reference = engine.collection[0]
        plan = QueryPlan.build(
            reference=reference,
            config=config,
            collection=engine.collection,
            index=engine.index,
            scheme=get_scheme("unweighted"),
            skip_set=0,
        )
        assert plan.decision.scheme == "unweighted"
        assert plan.decision.scheme_source == "caller"
        assert plan.decision.full_scan
        got, stats = plan.execute()
        expected = brute_force_search(
            reference, engine.collection, config, skip_set=0
        )
        assert sorted(r.set_id for r in got) == sorted(
            r.set_id for r in expected
        )
        assert stats.full_scan
        # ... and a mismatched (scheme, decision) pair is rejected.
        with pytest.raises(ValueError, match="does not match"):
            QueryPlan.build(
                reference=reference,
                config=config,
                collection=engine.collection,
                index=engine.index,
                scheme=get_scheme("unweighted"),
                decision=engine.decision,
            )

    def test_discovery_uses_fallback_too(self):
        """The shared driver (discovery mode) inherits the fallback."""
        sets = [["cdcd"], ["c"], ["abab"], ["cdcd", "cd"], ["cdcd", "c"]]
        engine, config = _build(
            sets,
            Relatedness.CONTAINMENT,
            SimilarityKind.EDS,
            "comb_unweighted",
            0.3,
            0.0,
            1,
        )
        got = sorted((r.reference_id, r.set_id) for r in engine.discover())
        from repro.baselines.brute_force import brute_force_discover

        expected = sorted(
            (r.reference_id, r.set_id)
            for r in brute_force_discover(engine.collection, config)
        )
        assert got == expected
        assert engine.stats.planner_fallbacks == engine.stats.passes


# ----------------------------------------------------------------------
# Decisions and the cost model
# ----------------------------------------------------------------------
class TestPlannerDecision:
    def test_valid_config_keeps_signatures(self):
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS, alpha=0.85, q=5, scheme="dichotomy"
        )
        decision = plan_query(config)
        assert decision.q == 5
        assert decision.q_source == "pinned"
        assert decision.q_constraint_ok
        assert decision.signature_valid
        assert not decision.full_scan

    def test_auto_q_follows_section_81(self):
        config = SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.85)
        decision = plan_query(config)
        assert decision.q == 5
        assert decision.q_source == "auto"

    def test_token_kind_q_source(self):
        decision = plan_query(SilkMothConfig())
        assert decision.q == 1
        assert decision.q_source == "token"
        assert decision.q_constraint_ok

    def test_auto_scheme_is_always_valid(self):
        # The cost model only picks bound-family schemes, so "auto"
        # never needs the fallback -- even for hostile (alpha, q).
        for alpha, q in ((0.0, 5), (0.5, 2), (0.2, 1)):
            config = SilkMothConfig(
                similarity=SimilarityKind.EDS, alpha=alpha, q=q, scheme="auto"
            )
            decision = plan_query(config)
            assert decision.scheme_source == "auto"
            assert decision.signature_valid
            assert not decision.full_scan

    def test_auto_scheme_exhaustive_for_tiny_collections(self):
        collection = SetCollection.from_strings([["a b"], ["a c"]])
        engine = SilkMoth(collection, SilkMothConfig(scheme="auto"))
        assert engine.decision.scheme == "exhaustive"
        assert engine.scheme.name == "exhaustive"

    def test_config_backend_beats_cost_model(self):
        collection = SetCollection.from_strings([["a b"], ["a c"]])
        engine = SilkMoth(
            collection, SilkMothConfig(scheme="auto", backend="python")
        )
        assert engine.decision.backend == "python"
        assert engine.decision.backend_source == "config"

    def test_env_var_beats_cost_model(self, monkeypatch):
        monkeypatch.setenv("SILKMOTH_BACKEND", "python")
        decision = plan_query(SilkMothConfig())
        assert decision.backend == "python"
        assert decision.backend_source == "env"

    def test_invalid_env_var_rejected(self, monkeypatch):
        # A deliberately set but misspelled variable must fail loudly,
        # matching get_backend()'s behaviour -- not fall through to auto.
        monkeypatch.setenv("SILKMOTH_BACKEND", "nunpy")
        with pytest.raises(ValueError, match="unknown compute backend"):
            plan_query(SilkMothConfig())

    def test_to_dict_roundtrips_key_fields(self):
        collection = SetCollection.from_strings([["a b"], ["a c"]])
        engine = SilkMoth(collection, SilkMothConfig(scheme="auto"))
        payload = engine.decision.to_dict()
        for key in ("scheme", "backend", "q", "full_scan", "reasons", "profile"):
            assert key in payload
        assert payload["profile"]["live_sets"] == 2

    def test_invalid_scheme_name_rejected_by_config(self):
        with pytest.raises(ValueError, match="scheme"):
            SilkMothConfig(scheme="prefix_tree")

    def test_index_profile_statistics(self):
        collection = SetCollection.from_strings([["a b", "a"], ["a c"]])
        engine = SilkMoth(collection, SilkMothConfig())
        profile = IndexProfile.from_index(engine.index)
        assert profile.live_sets == 2
        assert profile.total_elements == 3
        assert profile.distinct_tokens == 3  # a, b, c
        assert profile.total_postings == 5
        assert profile.max_list_length == 3  # "a" appears in 3 elements
        assert profile.skew == pytest.approx(3 / (5 / 3))

    def test_replan_tracks_mutations(self):
        collection = SetCollection.from_strings([["a b"]] * 2)
        engine = SilkMoth(collection, SilkMothConfig(scheme="auto"))
        assert engine.decision.scheme == "exhaustive"
        for i in range(40):
            engine.add_set([f"tok{i} tok{i + 1}"])
        decision = engine.replan()
        assert decision.profile.live_sets == 42
        assert decision.scheme == "dichotomy"
        assert engine.scheme.name == "dichotomy"


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
class TestServicePlanner:
    def test_plan_report_and_metadata(self, tmp_path):
        service = SilkMothService(SilkMothConfig(delta=0.5))
        service.add_set(["77 Mass Ave Boston MA"])
        report = service.plan_report()
        assert "query plan" in report
        assert service.decision.signature_valid
        path = tmp_path / "svc.json"
        service.save(path)
        from repro.io.persistence import load_service_snapshot

        _, metadata = load_service_snapshot(path)
        assert metadata["planner"]["scheme"] == service.decision.scheme
        assert metadata["planner"]["full_scan"] is False

    def test_insert_only_growth_triggers_replan(self):
        # An insert-only service never compacts; growth alone must
        # refresh the cost model's choices.
        service = SilkMothService(SilkMothConfig(scheme="auto"))
        service.add_set(["a b"])
        assert service.decision.scheme == "exhaustive"
        for i in range(80):
            service.add_set([f"tok{i} tok{i + 1}"])
        assert service.decision.profile.live_sets > 32
        assert service.decision.scheme == "dichotomy"
        assert service.engine.scheme.name == "dichotomy"

    def test_fallback_config_serves_exactly(self):
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS,
            metric=Relatedness.CONTAINMENT,
            delta=0.3,
            alpha=0.0,
            q=1,
            scheme="comb_unweighted",
        )
        service = SilkMothService(config)
        for elements in (["cdcd"], ["c"], ["abab"], ["cdcd", "cd"]):
            service.add_set(elements)
        assert service.decision.full_scan
        hits = service.search(["cdcd"])
        expected = brute_force_search(
            service.collection.query_set(["cdcd"]),
            service.collection,
            config,
        )
        assert sorted(r.set_id for r in hits) == sorted(
            r.set_id for r in expected
        )
