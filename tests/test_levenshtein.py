"""Unit tests for the Levenshtein implementations."""

import pytest

from repro.sim.levenshtein import levenshtein, levenshtein_within


class TestLevenshtein:
    def test_identical_strings(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty_both(self):
        assert levenshtein("", "") == 0

    def test_empty_one_side(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_single_substitution(self):
        assert levenshtein("cat", "cut") == 1

    def test_single_insertion(self):
        assert levenshtein("cat", "cart") == 1

    def test_single_deletion(self):
        assert levenshtein("cart", "cat") == 1

    def test_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_symmetry(self):
        assert levenshtein("sunday", "saturday") == levenshtein("saturday", "sunday")

    def test_completely_different(self):
        assert levenshtein("abc", "xyz") == 3

    def test_paper_example(self):
        # Section 2.1: LD("50 Vassar St MA", "50 Vassar Street MA") = 4.
        assert levenshtein("50 Vassar St MA", "50 Vassar Street MA") == 4

    def test_prefix(self):
        assert levenshtein("abc", "abcdef") == 3

    def test_transposition_costs_two(self):
        # Plain Levenshtein has no transposition operation.
        assert levenshtein("ab", "ba") == 2

    def test_unicode(self):
        assert levenshtein("café", "cafe") == 1


class TestLevenshteinWithin:
    @pytest.mark.parametrize(
        "x,y",
        [
            ("", ""),
            ("a", ""),
            ("kitten", "sitting"),
            ("sunday", "saturday"),
            ("abcdef", "abcdef"),
            ("abc", "xyz"),
            ("50 Vassar St MA", "50 Vassar Street MA"),
        ],
    )
    def test_matches_exact_when_bound_large(self, x, y):
        exact = levenshtein(x, y)
        assert levenshtein_within(x, y, 100) == exact

    def test_exceeding_bound_reports_bound_plus_one(self):
        assert levenshtein_within("abc", "xyz", 1) == 2

    def test_bound_equal_to_distance(self):
        assert levenshtein_within("kitten", "sitting", 3) == 3

    def test_bound_one_below_distance(self):
        assert levenshtein_within("kitten", "sitting", 2) == 3

    def test_length_difference_shortcut(self):
        assert levenshtein_within("a", "abcdefg", 3) == 4

    def test_negative_bound_identical(self):
        assert levenshtein_within("same", "same", -1) == 0

    def test_negative_bound_different(self):
        # A differing pair with bound -1 reports bound + 1 = 0, signalling
        # "exceeds the bound" (callers compare against the bound).
        assert levenshtein_within("a", "b", -1) == 0

    def test_zero_bound(self):
        assert levenshtein_within("same", "same", 0) == 0
        assert levenshtein_within("same", "sane", 0) == 1
