"""Unit tests for the data model and the inverted index."""

import pytest

from repro.core.records import SetCollection
from repro.index.inverted import InvertedIndex
from repro.sim.functions import SimilarityKind


@pytest.fixture
def jaccard_collection():
    return SetCollection.from_strings(
        [
            ["a b c", "c d"],
            ["b c", "e f g"],
            ["a", "h"],
        ]
    )


class TestSetCollection:
    def test_lengths(self, jaccard_collection):
        assert len(jaccard_collection) == 3
        assert len(jaccard_collection[0]) == 2

    def test_set_ids_match_positions(self, jaccard_collection):
        for i, record in enumerate(jaccard_collection):
            assert record.set_id == i

    def test_element_length_is_distinct_word_count(self):
        collection = SetCollection.from_strings([["a b a"]])
        assert collection[0].elements[0].length == 2

    def test_edit_element_length_is_string_length(self):
        collection = SetCollection.from_strings(
            [["abc"]], kind=SimilarityKind.EDS, q=2
        )
        assert collection[0].elements[0].length == 3

    def test_edit_signature_tokens_subset_of_index_tokens(self):
        collection = SetCollection.from_strings(
            [["silkmoth", "related sets"]], kind=SimilarityKind.EDS, q=3
        )
        for element in collection[0].elements:
            assert element.signature_tokens <= element.index_tokens

    def test_token_universe(self, jaccard_collection):
        vocab = jaccard_collection.vocabulary
        universe = jaccard_collection[0].token_universe
        assert {vocab.token_of(t) for t in universe} == {"a", "b", "c", "d"}

    def test_sibling_shares_vocabulary(self, jaccard_collection):
        sibling = jaccard_collection.sibling()
        sibling.add_set(["a b", "z"])
        # "a" resolves to the same id; "z" gets a fresh one.
        assert sibling.vocabulary is jaccard_collection.vocabulary
        a_id = jaccard_collection.vocabulary.id_of("a")
        assert a_id in sibling[0].elements[0].index_tokens

    def test_empty_element(self):
        collection = SetCollection.from_strings([[""]])
        assert collection[0].elements[0].length == 0
        assert collection[0].elements[0].index_tokens == frozenset()


class TestInvertedIndex:
    def test_postings_sorted_by_set(self, jaccard_collection):
        index = InvertedIndex(jaccard_collection)
        vocab = jaccard_collection.vocabulary
        postings = index.postings(vocab.id_of("c"))
        assert [p.set_id for p in postings] == sorted(p.set_id for p in postings)

    def test_list_length(self, jaccard_collection):
        index = InvertedIndex(jaccard_collection)
        vocab = jaccard_collection.vocabulary
        # "c" occurs in set0 (two elements) and set1 (one element).
        assert index.list_length(vocab.id_of("c")) == 3

    def test_unknown_token(self, jaccard_collection):
        index = InvertedIndex(jaccard_collection)
        assert index.postings(10**6) == []
        assert index.list_length(10**6) == 0

    def test_elements_in_set(self, jaccard_collection):
        index = InvertedIndex(jaccard_collection)
        vocab = jaccard_collection.vocabulary
        c = vocab.id_of("c")
        assert tuple(index.elements_in_set(c, 0)) == (0, 1)
        assert tuple(index.elements_in_set(c, 1)) == (0,)
        assert tuple(index.elements_in_set(c, 2)) == ()

    def test_total_postings(self, jaccard_collection):
        index = InvertedIndex(jaccard_collection)
        # set0: a,b,c + c,d -> 5; set1: b,c + e,f,g -> 5; set2: a + h -> 2.
        assert index.total_postings() == 12

    def test_edit_index_contains_padded_grams(self):
        collection = SetCollection.from_strings(
            [["ab"]], kind=SimilarityKind.EDS, q=3
        )
        index = InvertedIndex(collection)
        # "ab" padded to "ab##" (two pad chars) yields grams "ab#", "b##".
        assert index.total_postings() == 2


class TestTombstones:
    def test_remove_keeps_positions(self, jaccard_collection):
        record = jaccard_collection.remove_set(1)
        assert record.set_id == 1
        assert len(jaccard_collection) == 3          # positional length
        assert jaccard_collection.live_count == 2
        assert jaccard_collection.deleted_ids == {1}
        assert not jaccard_collection.is_live(1)
        assert [r.set_id for r in jaccard_collection.iter_live()] == [0, 2]

    def test_remove_out_of_range(self, jaccard_collection):
        with pytest.raises(KeyError, match="out of range"):
            jaccard_collection.remove_set(5)

    def test_remove_twice(self, jaccard_collection):
        jaccard_collection.remove_set(0)
        with pytest.raises(KeyError, match="already removed"):
            jaccard_collection.remove_set(0)

    def test_replace_set_appends_under_new_id(self, jaccard_collection):
        old, record = jaccard_collection.replace_set(0, ["x y"])
        assert old.set_id == 0
        assert record.set_id == 3
        assert not jaccard_collection.is_live(0)
        assert jaccard_collection.is_live(3)
        assert jaccard_collection.live_count == 3


class TestIndexMutability:
    def test_out_of_order_add_record_keeps_postings_sorted(self):
        collection = SetCollection.from_strings([["a b"], ["b c"], ["a c"]])
        index = InvertedIndex(collection)
        # Re-add set 0's record after the others: simulates a caller
        # that indexes records in arbitrary order.
        empty = SetCollection.from_strings([], vocabulary=collection.vocabulary)
        rebuilt = InvertedIndex(empty)
        for set_id in (2, 0, 1):
            rebuilt.add_record(collection[set_id])
        for token in range(len(collection.vocabulary)):
            assert rebuilt.postings(token) == index.postings(token)
            assert rebuilt.postings(token) == sorted(rebuilt.postings(token))

    def test_lazy_removal_then_compact(self, jaccard_collection):
        index = InvertedIndex(jaccard_collection)
        before = index.total_postings()
        record = jaccard_collection.remove_set(0)
        index.note_removed(record)
        assert index.total_postings() == before      # lazy: nothing dropped
        assert index.dead_fraction > 0.0
        removed = index.compact()
        assert removed == 5                          # set0 contributed 5 postings
        assert index.total_postings() == before - 5
        assert index.dead_fraction == 0.0
        assert index.compactions == 1
        deleted = jaccard_collection.deleted_ids
        for token in range(len(jaccard_collection.vocabulary)):
            assert all(p.set_id not in deleted for p in index.postings(token))

    def test_compact_without_tombstones_is_noop(self, jaccard_collection):
        index = InvertedIndex(jaccard_collection)
        assert index.compact() == 0
        assert index.compactions == 0

    def test_empty_element_postings_tracked_and_compacted(self):
        # Empty-after-tokenisation elements live on a dedicated posting
        # list (they share no token with anything) and must participate
        # in dead-posting accounting, or tombstoning sets made of them
        # would never trigger a compaction.
        collection = SetCollection.from_strings([[""], ["a b"], ["", "c"]])
        index = InvertedIndex(collection)
        assert [p.set_id for p in index.empty_postings()] == [0, 2]
        record = collection.remove_set(0)
        index.note_removed(record)
        assert index.dead_fraction > 0.0
        assert index.compact() == 1
        assert [p.set_id for p in index.empty_postings()] == [2]
        assert index.dead_fraction == 0.0

    def test_index_over_tombstoned_collection_accounts_dead(self, jaccard_collection):
        jaccard_collection.remove_set(2)
        index = InvertedIndex(jaccard_collection)
        assert index.dead_fraction > 0.0
        assert index.compact() == 2                  # set2: "a" + "h"
