"""Unit and property tests for the Hungarian matcher and the reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core.records import SetCollection
from repro.matching.hungarian import hungarian_max_weight, scipy_max_weight
from repro.matching.reduction import reduced_matching_score
from repro.matching.score import build_weight_matrix, matching_score
from repro.sim.functions import SimilarityFunction, SimilarityKind


class TestHungarian:
    def test_empty(self):
        assert hungarian_max_weight(np.zeros((0, 3))) == 0.0
        assert hungarian_max_weight(np.zeros((3, 0))) == 0.0

    def test_single_cell(self):
        assert hungarian_max_weight(np.array([[0.7]])) == pytest.approx(0.7)

    def test_square_identity(self):
        w = np.eye(3)
        assert hungarian_max_weight(w) == pytest.approx(3.0)

    def test_must_choose_off_diagonal(self):
        w = np.array([[0.9, 1.0], [1.0, 0.9]])
        assert hungarian_max_weight(w) == pytest.approx(2.0)

    def test_greedy_is_suboptimal(self):
        # Greedy would take 1.0 then 0.0; optimal is 0.9 + 0.8.
        w = np.array([[1.0, 0.9], [0.8, 0.0]])
        assert hungarian_max_weight(w) == pytest.approx(1.7)

    def test_rectangular_wide(self):
        w = np.array([[0.2, 0.9, 0.1]])
        assert hungarian_max_weight(w) == pytest.approx(0.9)

    def test_rectangular_tall(self):
        w = np.array([[0.2], [0.9], [0.1]])
        assert hungarian_max_weight(w) == pytest.approx(0.9)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hungarian_max_weight(np.array([[-0.1]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            hungarian_max_weight(np.array([1.0, 2.0]))

    def test_paper_example2_score(self):
        # Example 2: |R ~cap~ S4| = 0.8 + 1 + 0.429 = 2.229 (approx).
        w = np.array(
            [
                [0.8, 0.0, 2 / 8],
                [0.0, 1.0, 3 / 7],
                [1 / 8, 3 / 7, 3 / 7],
            ]
        )
        assert hungarian_max_weight(w) == pytest.approx(0.8 + 1.0 + 3 / 7)

    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_on_random_matrices(self, n, m, seed):
        pytest.importorskip("scipy")
        rng = np.random.default_rng(seed)
        w = rng.random((n, m))
        assert hungarian_max_weight(w) == pytest.approx(scipy_max_weight(w))

    def test_duplicate_weights(self):
        w = np.full((4, 4), 0.5)
        assert hungarian_max_weight(w) == pytest.approx(2.0)


def _jaccard_sets(*sets):
    return SetCollection.from_strings(list(sets))


class TestMatchingScore:
    def test_identical_sets(self):
        collection = _jaccard_sets(["a b", "c d"], ["a b", "c d"])
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        assert matching_score(collection[0], collection[1], phi) == pytest.approx(2.0)

    def test_disjoint_sets(self):
        collection = _jaccard_sets(["a b"], ["x y"])
        phi = SimilarityFunction(SimilarityKind.JACCARD)
        assert matching_score(collection[0], collection[1], phi) == 0.0

    def test_weight_matrix_edit(self):
        collection = SetCollection.from_strings(
            [["cat"], ["cut"]], kind=SimilarityKind.NEDS, q=2
        )
        phi = SimilarityFunction(SimilarityKind.NEDS)
        w = np.asarray(build_weight_matrix(collection[0], collection[1], phi))
        assert w[0, 0] == pytest.approx(2 / 3)

    def test_alpha_zeroes_weak_edges(self):
        collection = _jaccard_sets(["a b c d"], ["a x y z"])
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.5)
        assert matching_score(collection[0], collection[1], phi) == 0.0


class TestReduction:
    def _phi(self):
        return SimilarityFunction(SimilarityKind.JACCARD)

    def test_identical_elements_matched_directly(self):
        collection = _jaccard_sets(["a b", "c d", "e f"], ["a b", "c d", "x y"])
        assert reduced_matching_score(
            collection[0], collection[1], self._phi()
        ) == pytest.approx(2.0)

    def test_agrees_with_plain_matching(self):
        collection = _jaccard_sets(
            ["a b c", "c d", "e f", "a b"],
            ["a b", "c d e", "e f", "g h"],
        )
        phi = self._phi()
        assert reduced_matching_score(
            collection[0], collection[1], phi
        ) == pytest.approx(matching_score(collection[0], collection[1], phi))

    def test_duplicate_elements_multiset_semantics(self):
        # Two copies of "a b" on one side, one on the other: only one
        # identical pair can be matched greedily.
        collection = _jaccard_sets(["a b", "a b"], ["a b", "x y"])
        phi = self._phi()
        assert reduced_matching_score(
            collection[0], collection[1], phi
        ) == pytest.approx(matching_score(collection[0], collection[1], phi))

    def test_rejects_alpha(self):
        collection = _jaccard_sets(["a"], ["a"])
        phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.5)
        with pytest.raises(ValueError):
            reduced_matching_score(collection[0], collection[1], phi)

    def test_edit_kind_identity_by_string(self):
        collection = SetCollection.from_strings(
            [["abc", "def"], ["abc", "xyz"]], kind=SimilarityKind.EDS, q=2
        )
        phi = SimilarityFunction(SimilarityKind.EDS)
        assert reduced_matching_score(
            collection[0], collection[1], phi
        ) == pytest.approx(matching_score(collection[0], collection[1], phi))

    def test_empty_sides(self):
        collection = _jaccard_sets([], ["a"])
        phi = self._phi()
        assert reduced_matching_score(collection[0], collection[1], phi) == 0.0

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_reduction_equals_plain_on_random_sets(self, seed):
        import random

        rng = random.Random(seed)
        vocab = ["a", "b", "c", "d", "e"]

        def random_set():
            return [
                " ".join(rng.sample(vocab, rng.randint(1, 3)))
                for _ in range(rng.randint(1, 5))
            ]

        collection = _jaccard_sets(random_set(), random_set())
        phi = self._phi()
        assert reduced_matching_score(
            collection[0], collection[1], phi
        ) == pytest.approx(matching_score(collection[0], collection[1], phi))
