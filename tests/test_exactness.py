"""The headline invariant: SilkMoth is exact.

For random inputs and every combination of metric x similarity x scheme
x filter toggles, the engine must return exactly the same related pairs
as the brute-force oracle (the paper's central correctness claim).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_discover, brute_force_search
from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind
from repro.signatures import SCHEME_NAMES


def _random_jaccard_sets(rng, n_sets, vocab_size=10, max_elements=4, max_words=4):
    vocab = [f"w{i}" for i in range(vocab_size)]
    sets = []
    for _ in range(n_sets):
        elements = [
            " ".join(rng.sample(vocab, rng.randint(1, max_words)))
            for _ in range(rng.randint(1, max_elements))
        ]
        sets.append(elements)
    # Plant near-duplicates so related pairs actually exist.
    for i in range(0, n_sets - 1, 3):
        sets[i + 1] = list(sets[i])
        if sets[i + 1] and rng.random() < 0.7:
            j = rng.randrange(len(sets[i + 1]))
            sets[i + 1][j] = " ".join(
                rng.sample(vocab, rng.randint(1, max_words))
            )
    return sets


def _random_strings(rng, n_sets, max_elements=3):
    base_words = ["silkmoth", "matching", "related", "signature", "filter"]
    sets = []
    for _ in range(n_sets):
        elements = []
        for _ in range(rng.randint(1, max_elements)):
            word = rng.choice(base_words)
            if rng.random() < 0.5:
                chars = list(word)
                pos = rng.randrange(len(chars))
                chars[pos] = rng.choice("abcdefgh")
                word = "".join(chars)
            elements.append(word)
        sets.append(elements)
    return sets


def _pair_keys(pairs):
    return sorted((p.reference_id, p.set_id) for p in pairs)


def _assert_discovery_exact(collection, config):
    engine = SilkMoth(collection, config)
    got = engine.discover()
    expected = brute_force_discover(collection, config)
    assert _pair_keys(got) == _pair_keys(expected)
    # Scores must agree too.
    got_scores = {(p.reference_id, p.set_id): p.score for p in got}
    for p in expected:
        assert got_scores[(p.reference_id, p.set_id)] == pytest.approx(p.score)


class TestExactnessJaccard:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @pytest.mark.parametrize("metric", [Relatedness.SIMILARITY, Relatedness.CONTAINMENT])
    def test_all_schemes_and_metrics(self, scheme, metric):
        rng = random.Random(42)
        sets = _random_jaccard_sets(rng, 24)
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(
            metric=metric, delta=0.6, alpha=0.4, scheme=scheme
        )
        _assert_discovery_exact(collection, config)

    @pytest.mark.parametrize("check_filter", [False, True])
    @pytest.mark.parametrize("nn_filter", [False, True])
    @pytest.mark.parametrize("reduction", [False, True])
    def test_all_filter_toggles(self, check_filter, nn_filter, reduction):
        rng = random.Random(7)
        sets = _random_jaccard_sets(rng, 20)
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            delta=0.7,
            alpha=0.0,
            check_filter=check_filter,
            nn_filter=nn_filter,
            reduction=reduction,
        )
        _assert_discovery_exact(collection, config)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([0.5, 0.7, 0.9]),
        st.sampled_from([0.0, 0.3, 0.6]),
        st.sampled_from(sorted(SCHEME_NAMES)),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_similarity_discovery(self, seed, delta, alpha, scheme):
        rng = random.Random(seed)
        sets = _random_jaccard_sets(rng, 15)
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY, delta=delta, alpha=alpha, scheme=scheme
        )
        _assert_discovery_exact(collection, config)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([0.5, 0.8]),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_containment_search(self, seed, delta):
        rng = random.Random(seed)
        sets = _random_jaccard_sets(rng, 15)
        collection = SetCollection.from_strings(sets)
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=delta)
        engine = SilkMoth(collection, config)
        for ref_id in range(0, len(collection), 4):
            reference = collection[ref_id]
            got = engine.search(reference, skip_set=ref_id)
            expected = brute_force_search(
                reference, collection, config, skip_set=ref_id
            )
            assert sorted(r.set_id for r in got) == sorted(
                r.set_id for r in expected
            )


class TestExactnessEdit:
    @pytest.mark.parametrize("kind", [SimilarityKind.EDS, SimilarityKind.NEDS])
    @pytest.mark.parametrize("scheme", ["weighted", "skyline", "dichotomy", "comb_unweighted"])
    def test_edit_discovery(self, kind, scheme):
        rng = random.Random(11)
        sets = _random_strings(rng, 16)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=kind,
            delta=0.6,
            alpha=0.7,
            scheme=scheme,
        )
        collection = SetCollection.from_strings(
            sets, kind=kind, q=config.effective_q
        )
        _assert_discovery_exact(collection, config)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=12, deadline=None)
    def test_random_edit_discovery(self, seed):
        rng = random.Random(seed)
        sets = _random_strings(rng, 12)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=SimilarityKind.EDS,
            delta=0.7,
            alpha=0.8,
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=config.effective_q
        )
        _assert_discovery_exact(collection, config)

    def test_edit_alpha_zero_full_pipeline(self):
        # alpha = 0 with edit similarity exercises the no-share cap in
        # the NN filter; exactness must still hold.
        rng = random.Random(3)
        sets = _random_strings(rng, 10)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=SimilarityKind.EDS,
            delta=0.6,
            alpha=0.0,
            q=2,
        )
        collection = SetCollection.from_strings(
            sets, kind=SimilarityKind.EDS, q=2
        )
        _assert_discovery_exact(collection, config)


class TestExactnessOtherTokenKinds:
    """Dice, cosine and overlap must be exact end-to-end too.

    These kinds have looser (valid-but-not-complete) signature bounds,
    so exactness here specifically guards the Lemma 1 direction: no
    true result may be dropped by signatures or filters.
    """

    TOKEN_KINDS = [
        SimilarityKind.DICE,
        SimilarityKind.COSINE,
        SimilarityKind.OVERLAP,
    ]

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    @pytest.mark.parametrize("scheme", sorted(SCHEME_NAMES))
    def test_all_schemes(self, kind, scheme):
        rng = random.Random(13)
        sets = _random_jaccard_sets(rng, 20)
        collection = SetCollection.from_strings(sets, kind=kind)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=kind,
            delta=0.7,
            alpha=0.0,
            scheme=scheme,
        )
        _assert_discovery_exact(collection, config)

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    @pytest.mark.parametrize("alpha", [0.3, 0.6])
    def test_with_alpha(self, kind, alpha):
        rng = random.Random(14)
        sets = _random_jaccard_sets(rng, 18)
        collection = SetCollection.from_strings(sets, kind=kind)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=kind,
            delta=0.6,
            alpha=alpha,
        )
        _assert_discovery_exact(collection, config)

    @pytest.mark.parametrize("kind", TOKEN_KINDS)
    def test_containment_search(self, kind):
        rng = random.Random(15)
        sets = _random_jaccard_sets(rng, 18)
        collection = SetCollection.from_strings(sets, kind=kind)
        config = SilkMothConfig(
            metric=Relatedness.CONTAINMENT, similarity=kind, delta=0.7
        )
        engine = SilkMoth(collection, config)
        for ref_id in range(0, len(collection), 5):
            reference = collection[ref_id]
            got = engine.search(reference, skip_set=ref_id)
            expected = brute_force_search(
                reference, collection, config, skip_set=ref_id
            )
            assert sorted(r.set_id for r in got) == sorted(
                r.set_id for r in expected
            )

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([SimilarityKind.DICE, SimilarityKind.COSINE]),
        st.sampled_from([0.0, 0.4]),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_discovery(self, seed, kind, alpha):
        rng = random.Random(seed)
        sets = _random_jaccard_sets(rng, 14)
        collection = SetCollection.from_strings(sets, kind=kind)
        config = SilkMothConfig(
            metric=Relatedness.SIMILARITY,
            similarity=kind,
            delta=0.6,
            alpha=alpha,
        )
        _assert_discovery_exact(collection, config)
