"""Write-ahead log: record codec, rotation, recovery, service wiring.

The durability contract under test: every mutation is appended to the
log *before* it is applied, so "last checkpoint + replay of the log
tail" reconstructs the exact service state -- bit-identical by
:meth:`~repro.service.SilkMothService.state_fingerprint` -- after any
crash.  Recovery is idempotent (recovering twice is a no-op), the
format tolerates exactly one torn trailing record, and anything worse
is a loud :class:`~repro.io.wal.WalCorruptionError`, never a silently
different history.  The crash-point sweeps live in
``test_wal_crash_sweep.py``; this module covers the format and the
single-node service integration.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.config import SilkMothConfig
from repro.io.wal import (
    DEFAULT_SEGMENT_BYTES,
    SEGMENT_BYTES_ENV_VAR,
    WAL_DIR_ENV_VAR,
    RecoveryReport,
    WalCorruptionError,
    WalError,
    WalRecord,
    WriteAheadLog,
    decode_record,
    describe_wal,
    encode_record,
    list_segments,
    read_wal_records,
    recover_state,
    reset_wal_directory,
    resolve_segment_bytes,
    resolve_wal_dir,
    segment_record_offsets,
    wal_directory_in_use,
)
from repro.service import SilkMothService
from repro.sim.functions import SimilarityKind

CONFIG = SilkMothConfig(similarity=SimilarityKind.JACCARD, delta=0.5)

EDIT_CONFIG = SilkMothConfig(
    similarity=SimilarityKind.EDS, delta=0.5, alpha=0.8
)


def _records(n, start=1):
    return [
        WalRecord(seq=start + i, op="add", args={"elements": [f"word {i}"]})
        for i in range(n)
    ]


def _service(tmp_path, config=CONFIG, **kwargs):
    kwargs.setdefault("wal_fsync", False)
    return SilkMothService(config, wal_dir=tmp_path / "wal", **kwargs)


def _recover(tmp_path, config=CONFIG, **kwargs):
    kwargs.setdefault("wal_fsync", False)
    return SilkMothService.recover(tmp_path / "wal", config, **kwargs)


class TestCodec:
    def test_round_trip(self):
        for record in _records(3) + [
            WalRecord(seq=9, op="remove", args={"set_id": 4}),
            WalRecord(
                seq=10, op="update", args={"set_id": 1, "elements": ["x"]}
            ),
        ]:
            assert decode_record(encode_record(record)) == record

    def test_newline_optional(self):
        record = _records(1)[0]
        line = encode_record(record)
        assert decode_record(line.rstrip(b"\n")) == record

    def test_checksum_guards_payload(self):
        line = bytearray(encode_record(_records(1)[0]))
        line[-5] ^= 0x01  # flip one payload bit
        with pytest.raises(WalCorruptionError, match="checksum mismatch"):
            decode_record(bytes(line))

    def test_garbage_rejected(self):
        with pytest.raises(WalCorruptionError):
            decode_record(b"not a wal record at all")
        with pytest.raises(WalCorruptionError, match="malformed"):
            # Valid checksum over a JSON body with a bad op.
            bad = WalRecord(seq=1, op="add", args={})
            line = encode_record(bad).replace(b'"add"', b'"nop"')
            body = line.split(b" ", 1)[1]
            import hashlib

            digest = hashlib.blake2b(
                body.rstrip(b"\n"), digest_size=8
            ).hexdigest()
            decode_record(digest.encode() + b" " + body)


class TestResolvers:
    def test_wal_dir_argument_env_and_false(self, tmp_path, monkeypatch):
        monkeypatch.delenv(WAL_DIR_ENV_VAR, raising=False)
        assert resolve_wal_dir(None) is None
        assert resolve_wal_dir(tmp_path) == Path(tmp_path)
        monkeypatch.setenv(WAL_DIR_ENV_VAR, str(tmp_path / "env"))
        assert resolve_wal_dir(None) == tmp_path / "env"
        # False disables *explicitly*, ignoring the environment: shard
        # replicas must never share the env-named directory.
        assert resolve_wal_dir(False) is None
        monkeypatch.setenv(WAL_DIR_ENV_VAR, "")
        assert resolve_wal_dir(None) is None

    def test_segment_bytes(self, monkeypatch):
        monkeypatch.delenv(SEGMENT_BYTES_ENV_VAR, raising=False)
        assert resolve_segment_bytes(None) == DEFAULT_SEGMENT_BYTES
        assert resolve_segment_bytes(4096) == 4096
        monkeypatch.setenv(SEGMENT_BYTES_ENV_VAR, "512")
        assert resolve_segment_bytes(None) == 512
        with pytest.raises(ValueError):
            resolve_segment_bytes(0)


class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync=False)
        expected = _records(5)
        for record in expected:
            log.append(record.op, record.args, record.seq)
        log.close()
        records, torn = read_wal_records(tmp_path)
        assert records == expected
        assert torn is None

    def test_rotation_and_fresh_segment_numbering(self, tmp_path):
        log = WriteAheadLog(tmp_path, segment_bytes=1, fsync=False)
        for record in _records(3):
            log.append(record.op, record.args, record.seq)
        log.close()
        # segment_bytes=1: every append rotates, so records spread over
        # one segment each (plus the fresh empty one).
        names = [p.name for p in list_segments(tmp_path)]
        assert len(names) == 4
        # Reopening never appends to an existing segment.
        reopened = WriteAheadLog(tmp_path, fsync=False)
        assert reopened.segment_index == 5
        reopened.append("add", {"elements": ["later"]}, 4)
        reopened.close()
        records, torn = read_wal_records(tmp_path)
        assert [r.seq for r in records] == [1, 2, 3, 4]
        assert torn is None

    def test_closed_log_refuses_appends(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync=False)
        log.close()
        log.close()  # idempotent
        with pytest.raises(WalError, match="closed"):
            log.append("add", {"elements": []}, 1)
        with pytest.raises(WalError, match="closed"):
            log.rotate()

    def test_unknown_op_rejected(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync=False)
        with pytest.raises(ValueError, match="unknown WAL op"):
            log.append("drop", {}, 1)
        log.close()

    def test_position_counts(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync=False)
        for record in _records(2):
            log.append(record.op, record.args, record.seq)
        assert log.position() == {
            "segment": 1,
            "segment_records": 2,
            "appended": 2,
        }
        log.close()

    def test_directory_helpers(self, tmp_path):
        assert not wal_directory_in_use(tmp_path)
        log = WriteAheadLog(tmp_path, fsync=False)
        log.append("add", {"elements": []}, 1)
        log.close()
        assert wal_directory_in_use(tmp_path)
        reset_wal_directory(tmp_path)
        assert not wal_directory_in_use(tmp_path)
        reset_wal_directory(tmp_path / "never-created")  # tolerated


class TestTornTail:
    def _write(self, tmp_path, n):
        log = WriteAheadLog(tmp_path, fsync=False)
        for record in _records(n):
            log.append(record.op, record.args, record.seq)
        log.close()
        return list_segments(tmp_path)[0]

    def test_torn_last_record_tolerated_and_reported(self, tmp_path):
        segment = self._write(tmp_path, 3)
        offsets = segment_record_offsets(segment)
        # Cut mid-way through the last record.
        segment.write_bytes(segment.read_bytes()[: offsets[-1] - 7])
        records, torn = read_wal_records(tmp_path)
        assert [r.seq for r in records] == [1, 2]
        assert torn is not None and torn["segment"] == segment.name

    def test_interior_corruption_raises(self, tmp_path):
        segment = self._write(tmp_path, 3)
        data = bytearray(segment.read_bytes())
        data[segment_record_offsets(segment)[1] + 20] ^= 0x01
        segment.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="interior"):
            read_wal_records(tmp_path)

    def test_torn_record_followed_by_data_raises(self, tmp_path):
        self._write(tmp_path, 2)
        log = WriteAheadLog(tmp_path, fsync=False)  # opens segment 2
        log.append("add", {"elements": ["after"]}, 3)
        log.close()
        first = list_segments(tmp_path)[0]
        first.write_bytes(first.read_bytes()[:-9])  # tear segment 1's tail
        with pytest.raises(WalCorruptionError):
            read_wal_records(tmp_path)

    def test_seq_gap_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync=False)
        log.append("add", {"elements": []}, 1)
        log.append("add", {"elements": []}, 3)
        log.close()
        with pytest.raises(WalCorruptionError, match="seq jumps"):
            read_wal_records(tmp_path)


class TestServiceIntegration:
    def test_opt_in_via_kwarg_and_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(WAL_DIR_ENV_VAR, raising=False)
        plain = SilkMothService(CONFIG)
        assert plain.wal is None and plain.wal_position() is None
        monkeypatch.setenv(WAL_DIR_ENV_VAR, str(tmp_path / "env-wal"))
        monkeypatch.setenv("SILKMOTH_FSYNC", "0")
        via_env = SilkMothService(CONFIG)
        assert via_env.wal is not None
        assert via_env.wal.directory == tmp_path / "env-wal"
        via_env.close()
        # close() releases the handle; mutations then fail loudly
        # rather than running un-logged.
        with pytest.raises(WalError, match="closed"):
            via_env.add_set(["late write"])

    def test_mutations_recover_bit_identically(self, tmp_path):
        service = _service(tmp_path)
        service.add_set(["ash bay", "elm"])
        service.add_set(["ash common", "fir"])
        service.update_set(1, ["oak sky"])
        service.remove_set(0)
        service.add_set(["yew ivy", ""])
        fingerprint = service.state_fingerprint()
        results = service.search(["ash bay", "oak sky"])
        service.close()

        recovered = _recover(tmp_path)
        assert recovered.state_fingerprint() == fingerprint
        assert recovered.search(["ash bay", "oak sky"]) == results
        assert recovered.wal_recovery is not None
        recovered.close()

    def test_recover_twice_is_a_no_op(self, tmp_path):
        service = _service(tmp_path)
        for i in range(6):
            service.add_set([f"word{i} common"])
        service.remove_set(2)
        fingerprint = service.state_fingerprint()
        service.close()

        first = _recover(tmp_path)
        assert first.state_fingerprint() == fingerprint
        first.close()
        second = _recover(tmp_path)
        assert second.state_fingerprint() == fingerprint
        # The first recovery checkpointed, so the second replays nothing.
        assert second.wal_recovery.replayed == 0
        second.close()

    def test_recover_without_checkpoint_param_keeps_log(self, tmp_path):
        service = _service(tmp_path)
        service.add_set(["ash"])
        service.close()
        replayable_before = describe_wal(tmp_path / "wal")["replayable"]
        forensic = _recover(tmp_path, checkpoint=False)
        forensic.close()
        assert (
            describe_wal(tmp_path / "wal")["replayable"]
            == replayable_before
        )

    def test_wal_on_equals_wal_off(self, tmp_path):
        """Acceptance: zero-crash WAL service == WAL-less service."""
        with_wal = _service(tmp_path)
        without = SilkMothService(CONFIG)
        for service in (with_wal, without):
            service.add_set(["ash bay", "elm"])
            service.add_set(["ash common"])
            service.update_set(0, ["fir oak"])
            service.remove_set(1)
        assert (
            with_wal.state_fingerprint() == without.state_fingerprint()
        )
        reference = ["fir oak", "ash common"]
        assert with_wal.search(reference) == without.search(reference)
        with_wal.close()

    def test_invalid_mutations_not_logged(self, tmp_path):
        service = _service(tmp_path)
        service.add_set(["ash"])
        with pytest.raises(KeyError):
            service.remove_set(7)
        with pytest.raises(KeyError):
            service.update_set(7, ["x"])
        service.close()
        records, _ = read_wal_records(tmp_path / "wal")
        assert [r.op for r in records] == ["add"]

    def test_fresh_attach_over_existing_log_refused(self, tmp_path):
        service = _service(tmp_path)
        service.add_set(["ash"])
        service.close()
        with pytest.raises(WalError, match="recover"):
            _service(tmp_path)

    def test_save_checkpoints_the_log(self, tmp_path):
        service = _service(tmp_path)
        for i in range(4):
            service.add_set([f"word{i}"])
        assert describe_wal(tmp_path / "wal")["replayable"] == 4
        service.save(tmp_path / "snapshot.json")
        assert describe_wal(tmp_path / "wal")["replayable"] == 0
        service.close()
        recovered = _recover(tmp_path)
        assert recovered.generation == 4
        assert recovered.wal_recovery.replayed == 0
        recovered.close()

    def test_load_attaches_fresh_wal(self, tmp_path):
        plain = SilkMothService(CONFIG)
        plain.add_set(["ash bay"])
        plain.save(tmp_path / "snapshot.json")
        service = SilkMothService.load(
            tmp_path / "snapshot.json",
            CONFIG,
            wal_dir=tmp_path / "wal",
            wal_fsync=False,
        )
        service.add_set(["elm fir"])
        fingerprint = service.state_fingerprint()
        service.close()
        recovered = _recover(tmp_path)
        assert recovered.state_fingerprint() == fingerprint
        recovered.close()

    def test_recover_validates_tokenizer(self, tmp_path):
        service = _service(tmp_path, config=EDIT_CONFIG)
        service.add_set(["ash bay"])
        service.close()
        with pytest.raises(ValueError, match="tokenised"):
            _recover(tmp_path)  # CONFIG is jaccard, checkpoint is eds

    def test_recover_empty_directory_fails_loudly(self, tmp_path):
        with pytest.raises(WalError, match="not a WAL directory"):
            recover_state(tmp_path / "nothing")

    def test_edit_kind_round_trip(self, tmp_path):
        service = _service(tmp_path, config=EDIT_CONFIG)
        service.add_set(["silkmoth", "silkm0th"])
        service.add_set(["vldb paper"])
        service.remove_set(1)
        fingerprint = service.state_fingerprint()
        service.close()
        recovered = _recover(tmp_path, config=EDIT_CONFIG)
        assert recovered.state_fingerprint() == fingerprint
        recovered.close()


class TestRecoveryReport:
    def test_to_dict_round_trips_through_json(self):
        report = RecoveryReport(
            checkpoint_generation=3,
            replayed=2,
            skipped=1,
            segments=2,
            torn_tail={"segment": "wal-00000002.log"},
        )
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()


class TestCli:
    def _populate(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SILKMOTH_FSYNC", "0")
        service = _service(tmp_path)
        service.add_set(["ash bay", "elm"])
        service.add_set(["oak sky"])
        service.remove_set(0)
        fingerprint = service.state_fingerprint()
        service.close()
        return fingerprint

    def test_inspect_text_and_json(self, tmp_path, monkeypatch, capsys):
        self._populate(tmp_path, monkeypatch)
        assert main(["wal", "inspect", str(tmp_path / "wal")]) == 0
        text = capsys.readouterr().out
        assert "checkpoint:" in text and "replayable:" in text
        assert main(["wal", "inspect", str(tmp_path / "wal"), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["directory"] == str(tmp_path / "wal")
        assert summary["checkpoint"]["generation"] >= 0
        assert summary["replayable"] <= summary["records"]

    def test_recover_reports_and_snapshots(
        self, tmp_path, monkeypatch, capsys
    ):
        fingerprint = self._populate(tmp_path, monkeypatch)
        output = tmp_path / "recovered.json"
        code = main(
            [
                "wal",
                "recover",
                str(tmp_path / "wal"),
                "--output",
                str(output),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert fingerprint in err
        assert output.exists()
        collection_service = SilkMothService.load(output, CONFIG)
        assert collection_service.generation == 3

    def test_bad_directory_exits_2(self, tmp_path, capsys):
        assert main(["wal", "inspect", str(tmp_path / "missing")]) == 2
        assert "not a WAL directory" in capsys.readouterr().err
        assert main(["wal", "recover", str(tmp_path / "missing")]) == 2
