"""Version-2 service snapshots and persistence failure paths.

Round-trips must preserve query results and live-set membership; every
malformed input (wrong format, unsupported version, truncated JSON,
mismatched tokenizer settings) must fail with a clear ``ValueError``
rather than silently serving wrong results.
"""

import json
import random

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.io.persistence import (
    load_collection,
    load_service_snapshot,
    save_collection,
    save_service_snapshot,
)
from repro.service import SilkMothService
from repro.sim.functions import SimilarityKind


def _populated_service(tmp_path):
    rng = random.Random(23)
    vocab = [f"w{i}" for i in range(10)]
    config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.5)
    service = SilkMothService(config)
    for _ in range(12):
        service.add_set(
            [
                " ".join(rng.sample(vocab, rng.randint(1, 4)))
                for _ in range(rng.randint(1, 3))
            ]
        )
    service.remove_set(3)
    service.update_set(7, ["w0 w1", "w2"])
    return service, config


class TestRoundTrip:
    def test_live_membership_and_results_survive(self, tmp_path):
        service, config = _populated_service(tmp_path)
        path = tmp_path / "service.json"
        service.save(path)
        restored = SilkMothService.load(path, config)

        assert restored.live_set_ids() == service.live_set_ids()
        assert restored.collection.deleted_ids == service.collection.deleted_ids
        for reference in (["w0 w1"], ["w2 w3", "w4"], ["w9"]):
            assert [
                (r.set_id, round(r.score, 9)) for r in restored.search(reference)
            ] == [(r.set_id, round(r.score, 9)) for r in service.search(reference)]

    def test_generation_survives(self, tmp_path):
        service, config = _populated_service(tmp_path)
        path = tmp_path / "service.json"
        service.save(path)
        restored = SilkMothService.load(path, config)
        assert restored.generation == service.generation

    def test_metadata_carries_stats(self, tmp_path):
        service, config = _populated_service(tmp_path)
        service.search(["w0 w1"])
        path = tmp_path / "service.json"
        service.save(path)
        _, metadata = load_service_snapshot(path)
        assert metadata["stats"]["queries"] == 1
        assert metadata["stats"]["mutations"] == service.stats.mutations

    def test_lifetime_counters_survive_restart(self, tmp_path):
        service, config = _populated_service(tmp_path)
        service.search(["w0 w1"])
        service.search(["w0 w1"])  # hit
        path = tmp_path / "service.json"
        service.save(path)
        restored = SilkMothService.load(path, config)
        assert restored.stats.queries == service.stats.queries
        assert restored.stats.cache_hits == service.stats.cache_hits
        assert restored.stats.mutations == service.stats.mutations
        assert restored.stats.query_seconds_total == pytest.approx(
            service.stats.query_seconds_total
        )

    def test_counters_not_adopted_under_different_config(self, tmp_path):
        service, config = _populated_service(tmp_path)
        service.search(["w0 w1"])
        path = tmp_path / "service.json"
        service.save(path)
        other = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.9)
        restored = SilkMothService.load(path, other)
        # Different delta: lifetime counters start fresh, generation stays.
        assert restored.stats.queries == 0
        assert restored.generation == service.generation

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        service, config = _populated_service(tmp_path)
        path = tmp_path / "service.json"
        service.save(path)
        service.save(path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["service.json"]

    def test_load_collection_reads_v2_with_tombstones(self, tmp_path):
        service, _ = _populated_service(tmp_path)
        path = tmp_path / "service.json"
        service.save(path)
        collection = load_collection(path)
        assert collection.deleted_ids == service.collection.deleted_ids
        assert collection.live_count == service.collection.live_count

    def test_service_adopts_v1_snapshot(self, tmp_path):
        from repro.core.records import SetCollection

        collection = SetCollection.from_strings([["a b"], ["c d"]])
        path = tmp_path / "plain.json"
        save_collection(path, collection)
        service = SilkMothService.load(path, SilkMothConfig(delta=0.5))
        assert service.live_set_ids() == [0, 1]
        assert service.generation == 0

    def test_save_load_save_is_stable(self, tmp_path):
        service, config = _populated_service(tmp_path)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        service.save(first)
        restored = SilkMothService.load(first, config)
        restored.save(second)
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        assert a["sets"] == b["sets"]
        assert a["deleted"] == b["deleted"]


class TestFailurePaths:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"format": "something-else", "version": 1}')
        with pytest.raises(ValueError, match="not a silkmoth-collection"):
            load_service_snapshot(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format": "silkmoth-collection", "version": 99, '
            '"similarity": "jaccard", "q": 1, "sets": []}'
        )
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            load_service_snapshot(path)
        with pytest.raises(ValueError, match="unsupported snapshot version"):
            load_collection(path)

    def test_truncated_json_rejected(self, tmp_path):
        service, _ = _populated_service(tmp_path)
        path = tmp_path / "whole.json"
        service.save(path)
        truncated = tmp_path / "truncated.json"
        truncated.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(ValueError, match="truncated or invalid JSON"):
            load_service_snapshot(truncated)
        with pytest.raises(ValueError, match="truncated or invalid JSON"):
            load_collection(truncated)

    def test_mismatched_similarity_rejected(self, tmp_path):
        service, _ = _populated_service(tmp_path)
        path = tmp_path / "service.json"
        service.save(path)
        with pytest.raises(ValueError, match="tokenised for 'jaccard'"):
            load_service_snapshot(path, expected_kind=SimilarityKind.EDS)
        with pytest.raises(ValueError, match="tokenised for"):
            SilkMothService.load(
                path, SilkMothConfig(similarity=SimilarityKind.EDS, alpha=0.8)
            )

    def test_mismatched_q_rejected(self, tmp_path):
        from repro.core.records import SetCollection

        collection = SetCollection.from_strings(
            [["silkmoth"]], kind=SimilarityKind.EDS, q=3
        )
        path = tmp_path / "eds.json"
        save_service_snapshot(path, collection)
        with pytest.raises(ValueError, match="q=3, expected q=2"):
            load_service_snapshot(
                path, expected_kind=SimilarityKind.EDS, expected_q=2
            )

    def test_invalid_tombstone_id_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "format": "silkmoth-collection",
                    "version": 2,
                    "similarity": "jaccard",
                    "q": 1,
                    "sets": [["a"]],
                    "deleted": [5],
                    "service": {},
                }
            )
        )
        with pytest.raises(ValueError, match="invalid tombstoned set id"):
            load_service_snapshot(path)

    def test_duplicate_tombstone_id_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(
            json.dumps(
                {
                    "format": "silkmoth-collection",
                    "version": 2,
                    "similarity": "jaccard",
                    "q": 1,
                    "sets": [["a"], ["b"]],
                    "deleted": [0, 0],
                    "service": {},
                }
            )
        )
        with pytest.raises(ValueError, match="repeats a set id"):
            load_service_snapshot(path)

    def test_malformed_similarity_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "silkmoth-collection", "version": 1, '
            '"similarity": "nope", "q": 1, "sets": []}'
        )
        with pytest.raises(ValueError, match="malformed snapshot"):
            load_collection(path)
