"""Address generator: determinism, noise knobs, planted joinability."""

import random

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.datasets.addresses import (
    address_column,
    address_database,
    dirty_variant,
)


class TestAddressColumn:
    def test_deterministic(self):
        assert address_column(10, seed=3) == address_column(10, seed=3)

    def test_different_seeds_differ(self):
        assert address_column(10, seed=3) != address_column(10, seed=4)

    def test_row_shape(self):
        for row in address_column(20, seed=0):
            words = row.split()
            # number, street name, street type, city, state, zip
            assert len(words) == 6
            assert words[0].isdigit()
            assert len(words[-1]) == 5 and words[-1].isdigit()


class TestDirtyVariant:
    def test_same_length_plus_extras(self):
        clean = address_column(20, seed=1)
        dirty = dirty_variant(clean, seed=2, unrelated_fraction=0.25)
        assert len(dirty) == 25

    def test_no_extras(self):
        clean = address_column(10, seed=1)
        dirty = dirty_variant(clean, seed=2, unrelated_fraction=0.0)
        assert len(dirty) == 10

    def test_rows_actually_dirty(self):
        clean = address_column(30, seed=1)
        dirty = dirty_variant(clean, seed=2, unrelated_fraction=0.0)
        assert set(dirty) != set(clean)

    def test_zero_noise_is_permutation(self):
        clean = address_column(15, seed=1)
        dirty = dirty_variant(
            clean,
            seed=2,
            abbreviate_prob=0.0,
            typo_prob=0.0,
            move_zip_prob=0.0,
            unrelated_fraction=0.0,
        )
        assert sorted(dirty) == sorted(clean)

    def test_deterministic(self):
        clean = address_column(10, seed=1)
        assert dirty_variant(clean, seed=5) == dirty_variant(clean, seed=5)


class TestAddressDatabase:
    def test_column_names(self):
        db = address_database(n_columns=8, joinable_pairs=3, seed=1)
        assert len(db) == 8
        assert "addr_0" in db and "addr_0_dirty" in db
        assert "other_0" in db

    def test_too_many_pairs_rejected(self):
        with pytest.raises(ValueError):
            address_database(n_columns=4, joinable_pairs=3)

    def test_planted_pairs_are_joinable(self):
        db = address_database(
            n_columns=6, rows_per_column=20, joinable_pairs=2, seed=7
        )
        names = list(db)
        collection = SetCollection.from_strings(db.values())
        config = SilkMothConfig(
            metric=Relatedness.CONTAINMENT, delta=0.5, alpha=0.3
        )
        engine = SilkMoth(collection, config)
        related = set()
        for reference in collection:
            for result in engine.search(reference, skip_set=reference.set_id):
                related.add(
                    (names[reference.set_id], names[result.set_id])
                )
        for pair in range(2):
            assert (f"addr_{pair}", f"addr_{pair}_dirty") in related

    def test_decoys_not_joinable(self):
        db = address_database(
            n_columns=6, rows_per_column=20, joinable_pairs=2, seed=7
        )
        names = list(db)
        collection = SetCollection.from_strings(db.values())
        config = SilkMothConfig(
            metric=Relatedness.CONTAINMENT, delta=0.5, alpha=0.3
        )
        engine = SilkMoth(collection, config)
        decoy_id = names.index("other_0")
        results = engine.search(collection[decoy_id], skip_set=decoy_id)
        joined = {names[r.set_id] for r in results}
        # A decoy may weakly match another random column, but must not
        # join the planted clean/dirty pairs' partners strongly.
        assert f"addr_0_dirty" not in joined or len(joined) < len(names) - 1
