"""Bit-parallel Myers kernel: equivalence with the classic DP.

The Myers kernel is the shipping edit-distance implementation; the
dynamic programs in :mod:`repro.sim.levenshtein` are its executable
specification.  These properties pin exact equivalence -- including
unicode, strings past the 64-character single-word boundary, and the
``bound + 1`` overflow contract of the bounded variant -- plus the
dispatcher fast paths (prefix/suffix trimming, length short-circuit).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.levenshtein import (
    KNOWN_KERNELS,
    levenshtein,
    levenshtein_dp,
    levenshtein_within,
    levenshtein_within_dp,
    use_kernel,
)
from repro.sim.myers import myers_distance, myers_within

# Mixed-width alphabet: ASCII, Latin-1, BMP, astral.  Repetition-heavy
# so trimming paths and runs of matches are exercised.
_texts = st.text(alphabet="ab xyðé☃𝄞", max_size=140)

_bounds = st.integers(min_value=-2, max_value=20)


class TestMyersDistance:
    @given(_texts, _texts)
    @settings(max_examples=300, deadline=None)
    def test_equals_classic_dp(self, x, y):
        assert myers_distance(x, y) == levenshtein_dp(x, y)

    def test_long_unicode_past_word_boundary(self):
        # > 64 characters forces the multi-word big-int path.
        x = "é☃" * 50
        y = "é☃" * 50 + "abc"
        assert len(x) > 64
        assert myers_distance(x, y) == 3
        assert myers_distance(x, x) == 0

    def test_empty_sides(self):
        assert myers_distance("", "") == 0
        assert myers_distance("", "abc") == 3
        assert myers_distance("abc", "") == 3

    @given(_texts, _texts)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, x, y):
        assert myers_distance(x, y) == myers_distance(y, x)


class TestMyersWithin:
    @given(_texts, _texts, _bounds)
    @settings(max_examples=300, deadline=None)
    def test_equals_banded_dp_contract(self, x, y, bound):
        # The reference owns the contract, including bound < 0 and the
        # bound + 1 overflow signal.
        assert myers_within(x, y, bound) == levenshtein_within_dp(x, y, bound)

    @given(_texts, _texts, st.integers(min_value=0, max_value=30))
    @settings(max_examples=200, deadline=None)
    def test_overflow_contract(self, x, y, bound):
        exact = levenshtein_dp(x, y)
        expected = exact if exact <= bound else bound + 1
        assert myers_within(x, y, bound) == expected

    def test_long_strings_with_tight_bound(self):
        x = "a" * 100 + "🎵" * 30
        y = "a" * 100 + "🎶" * 30
        assert myers_within(x, y, 5) == 6
        assert myers_within(x, y, 30) == 30


class TestDispatcher:
    @given(_texts, _texts)
    @settings(max_examples=150, deadline=None)
    def test_kernels_agree_through_the_entry_point(self, x, y):
        previous = use_kernel("dp")
        try:
            via_dp = levenshtein(x, y)
        finally:
            use_kernel(previous)
        assert levenshtein(x, y) == via_dp

    @given(_texts, _texts, _bounds)
    @settings(max_examples=150, deadline=None)
    def test_bounded_kernels_agree_through_the_entry_point(self, x, y, bound):
        previous = use_kernel("dp")
        try:
            via_dp = levenshtein_within(x, y, bound)
        finally:
            use_kernel(previous)
        assert levenshtein_within(x, y, bound) == via_dp

    def test_trimming_fast_path_is_distance_neutral(self):
        assert levenshtein("prefix-A-suffix", "prefix-B-suffix") == 1
        assert levenshtein_within("prefix-A-suffix", "prefix-BB-suffix", 5) == 2

    def test_length_difference_short_circuit(self):
        assert levenshtein_within("a", "abcdefg", 3) == 4

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown edit kernel"):
            use_kernel("gpu")
        assert "dp" in KNOWN_KERNELS
