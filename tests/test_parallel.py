"""Parallel discovery must equal serial discovery, byte for byte."""

import random

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.parallel import _chunk, parallel_discover
from repro.core.records import SetCollection
from repro.sim.functions import SimilarityKind


def _random_sets(rng, n_sets, vocab_size=12):
    vocab = [f"w{i}" for i in range(vocab_size)]
    sets = []
    for _ in range(n_sets):
        elements = [
            " ".join(rng.sample(vocab, rng.randint(1, 4)))
            for _ in range(rng.randint(1, 4))
        ]
        sets.append(elements)
    for i in range(0, n_sets - 1, 3):
        sets[i + 1] = list(sets[i])
    return sets


def _serial(sets, config, reference_sets=None):
    collection = SetCollection.from_strings(
        sets, kind=config.similarity, q=config.effective_q
    )
    engine = SilkMoth(collection, config)
    if reference_sets is None:
        return engine.discover()
    references = engine.reference_collection(reference_sets)
    return engine.discover(references)


def _keys(results):
    return [(r.reference_id, r.set_id, round(r.score, 9)) for r in results]


class TestChunking:
    def test_covers_all_ids(self):
        ids = list(range(17))
        chunks = _chunk(ids, 5)
        assert sorted(sum(chunks, [])) == ids
        assert len(chunks) == 5

    def test_more_chunks_than_ids(self):
        chunks = _chunk([0, 1], 10)
        assert chunks == [[0], [1]]

    def test_single_chunk(self):
        assert _chunk([1, 2, 3], 1) == [[1, 2, 3]]


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("processes", [1, 2, 3])
    def test_self_discovery_similarity(self, processes):
        rng = random.Random(31)
        sets = _random_sets(rng, 24)
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.6)
        expected = _serial(sets, config)
        got = parallel_discover(sets, config, processes=processes)
        assert _keys(got) == _keys(expected)

    @pytest.mark.parametrize("processes", [1, 2])
    def test_self_discovery_containment(self, processes):
        rng = random.Random(32)
        sets = _random_sets(rng, 20)
        config = SilkMothConfig(metric=Relatedness.CONTAINMENT, delta=0.7)
        expected = _serial(sets, config)
        got = parallel_discover(sets, config, processes=processes)
        assert _keys(got) == _keys(expected)

    def test_cross_collection_discovery(self):
        rng = random.Random(33)
        sets = _random_sets(rng, 18)
        references = _random_sets(rng, 6)
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.5)
        expected = _serial(sets, config, references)
        got = parallel_discover(
            sets, config, reference_sets=references, processes=2
        )
        assert _keys(got) == _keys(expected)

    def test_edit_similarity(self):
        rng = random.Random(34)
        words = ["matching", "signature", "filtering"]
        sets = []
        for _ in range(12):
            sets.append([rng.choice(words) for _ in range(rng.randint(1, 3))])
        config = SilkMothConfig(
            similarity=SimilarityKind.EDS, delta=0.7, alpha=0.8
        )
        expected = _serial(sets, config)
        got = parallel_discover(sets, config, processes=2)
        assert _keys(got) == _keys(expected)

    def test_empty_input(self):
        config = SilkMothConfig(delta=0.7)
        assert parallel_discover([], config, processes=2) == []

    def test_chunking_granularity_irrelevant(self):
        rng = random.Random(35)
        sets = _random_sets(rng, 15)
        config = SilkMothConfig(delta=0.6)
        a = parallel_discover(sets, config, processes=2, chunks_per_process=1)
        b = parallel_discover(sets, config, processes=2, chunks_per_process=8)
        assert _keys(a) == _keys(b)
