"""Cluster durability: per-replica WALs, from-disk revive, manifests.

The cluster threading of the WAL under test: every replica logs to its
own ``<wal_dir>/shard<k>-replica<r>`` directory, a dead replica can be
rebuilt from disk instead of shipping state over the transport --
trust-but-verify: the recovered state must equal the coordinator's
directory exactly, anything else falls back to a plain rebuild
(:attr:`~repro.cluster.SilkMothCluster.wal_revive_fallbacks`) -- and
:meth:`save` checkpoints every shard log and records the positions in
the cluster manifest, so :meth:`load` with a *wal_dir* resumes from
disk with zero fallbacks after a clean save/close cycle.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import SilkMothCluster
from repro.core.config import SilkMothConfig
from repro.io.persistence import load_cluster_manifest
from repro.io.wal import WAL_DIR_ENV_VAR, wal_directory_in_use

CONFIG = SilkMothConfig(delta=0.3)

DATA = [
    ["ash bay common", "elm fir"],
    ["ash bay elm common", "oak"],
    ["sky yew common", "ivy"],
    ["ash common", "fir elm"],
    ["oak sky common", ""],
    ["bay fir common", "yew"],
]

BROAD_REFERENCE = ["ash bay common", "oak sky common"]


@pytest.fixture(autouse=True)
def _no_fsync(monkeypatch):
    monkeypatch.setenv("SILKMOTH_FSYNC", "0")
    monkeypatch.delenv(WAL_DIR_ENV_VAR, raising=False)


def _cluster(tmp_path, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("wal_dir", tmp_path / "wal")
    return SilkMothCluster.from_sets(DATA, CONFIG, **kwargs)


def test_each_replica_logs_to_its_own_directory(tmp_path):
    with _cluster(tmp_path) as cluster:
        cluster.add_set(["fresh common words"])
        names = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert names == [
            f"shard{k}-replica{r}" for k in range(2) for r in range(2)
        ]
        for name in names:
            assert wal_directory_in_use(tmp_path / "wal" / name)
        assert cluster.wal_revive_fallbacks == 0


def test_env_var_opt_in(tmp_path, monkeypatch):
    monkeypatch.setenv(WAL_DIR_ENV_VAR, str(tmp_path / "env-wal"))
    with SilkMothCluster.from_sets(
        DATA, CONFIG, shards=2, replicas=1
    ) as cluster:
        cluster.add_set(["env opted in"])
        assert (tmp_path / "env-wal" / "shard0-replica0").is_dir()


def test_revive_from_disk_adopts_a_current_log(tmp_path):
    with _cluster(tmp_path) as cluster:
        cluster.add_set(["fresh common words"])
        cluster.remove_set(0)
        expected = cluster.search(BROAD_REFERENCE)
        cluster._mark_replica_dead(0, 0)
        assert cluster.revive(from_disk=True) == 1
        # The dead replica's log described exactly the coordinator's
        # state, so it was adopted -- no fallback rebuild.
        assert cluster.wal_revive_fallbacks == 0
        cluster._shards[0][1].kill()  # answers must come from the revived one
        cluster.cache.invalidate()
        assert cluster.search(BROAD_REFERENCE) == expected


def test_revive_from_disk_falls_back_on_a_stale_log(tmp_path):
    with _cluster(tmp_path) as cluster:
        cluster._mark_replica_dead(0, 0)
        # Mutations the dead replica never saw: its log is now stale.
        cluster.add_set(["ash bay common update"])
        cluster.remove_set(2)
        expected = cluster.search(BROAD_REFERENCE)
        assert cluster.revive(from_disk=True) == 1
        assert cluster.wal_revive_fallbacks == 1
        cluster._shards[0][1].kill()
        cluster.cache.invalidate()
        assert cluster.search(BROAD_REFERENCE) == expected


def test_plain_revive_never_touches_the_disk_path(tmp_path):
    with _cluster(tmp_path) as cluster:
        cluster._mark_replica_dead(1, 1)
        assert cluster.revive() == 1
        assert cluster.wal_revive_fallbacks == 0


def test_save_records_wal_positions_and_load_recovers(tmp_path):
    manifest = tmp_path / "snap" / "cluster.json"
    manifest.parent.mkdir()
    with _cluster(tmp_path) as cluster:
        cluster.add_set(["fresh common words"])
        cluster.update_set(1, ["rewritten common"])
        expected = cluster.search(BROAD_REFERENCE)
        cluster.save(manifest)
        payload = load_cluster_manifest(manifest)
        wal_meta = payload["cluster"]["wal"]
        assert wal_meta["dir"] == str(tmp_path / "wal")
        assert len(wal_meta["positions"]) == 2
        # save() checkpointed: every shard log starts a fresh segment.
        for position in wal_meta["positions"]:
            assert position["segment_records"] == 0

    loaded = SilkMothCluster.load(
        manifest, CONFIG, replicas=2, wal_dir=tmp_path / "wal"
    )
    try:
        assert loaded.wal_revive_fallbacks == 0
        assert loaded.search(BROAD_REFERENCE) == expected
    finally:
        loaded.close()


def test_load_with_wal_falls_back_when_log_ran_ahead(tmp_path):
    manifest = tmp_path / "cluster.json"
    with _cluster(tmp_path, replicas=1) as cluster:
        cluster.save(manifest)
        cluster.add_set(["mutation after the save"])
        expected_without = None  # closed without saving the add

    loaded = SilkMothCluster.load(
        manifest, CONFIG, replicas=1, wal_dir=tmp_path / "wal"
    )
    try:
        # The shard that took the unsaved add diverges from the
        # manifest; the manifest wins and the divergence is counted.
        assert loaded.wal_revive_fallbacks == 1
        assert len(loaded) == len(DATA)
        assert expected_without is None
    finally:
        loaded.close()


def test_save_without_wal_writes_no_wal_metadata(tmp_path):
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(DATA, CONFIG, shards=2) as cluster:
        cluster.save(manifest)
    payload = load_cluster_manifest(manifest)
    assert "wal" not in payload["cluster"]


def test_manifest_wal_positions_are_json_clean(tmp_path):
    manifest = tmp_path / "cluster.json"
    with _cluster(tmp_path, replicas=1) as cluster:
        cluster.add_set(["json witness common"])
        cluster.save(manifest)
    with open(manifest, encoding="utf-8") as handle:
        raw = json.load(handle)
    positions = raw["cluster"]["wal"]["positions"]
    assert all(
        position is None or isinstance(position["segment"], int)
        for position in positions
    )


def test_process_transport_wal_round_trip(tmp_path):
    """Worker processes log to disk too; save/close/load stays exact."""
    manifest = tmp_path / "cluster.json"
    with SilkMothCluster.from_sets(
        DATA,
        CONFIG,
        shards=2,
        replicas=1,
        transport="process",
        wal_dir=tmp_path / "wal",
    ) as cluster:
        cluster.add_set(["process transport words"])
        expected = cluster.search(BROAD_REFERENCE)
        cluster.save(manifest)

    loaded = SilkMothCluster.load(
        manifest,
        CONFIG,
        transport="process",
        replicas=1,
        wal_dir=tmp_path / "wal",
    )
    try:
        assert loaded.wal_revive_fallbacks == 0
        assert loaded.search(BROAD_REFERENCE) == expected
    finally:
        loaded.close()
