"""Crash-point sweep: recovery always lands on pre- or post-state.

The headline durability claim, in executable form.  A crash is
simulated at every named point in the WAL code path
(:data:`~repro.io.wal.WAL_CRASH_POINTS`, armed via
:func:`~repro.cluster.faults.crash_at` in-process or
``SILKMOTH_CRASH_AT`` in shard worker processes) and at every record
boundary of the log itself (simulated torn appends).  Whatever the
crash interrupts, :meth:`SilkMothService.recover` must land
bit-identical -- by :meth:`~repro.service.SilkMothService
.state_fingerprint` -- to the single-node oracle *before* or *after*
the interrupted mutation, never a third state.  Programs are
Hypothesis-generated and swept on both backends.

When ``SILKMOTH_RECOVERY_REPORT`` names a file, every recovery the
sweep performs appends one JSON line describing the crash and the
outcome; the CI ``crash-smoke`` leg uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.cluster import ClusterDegradedError, SilkMothCluster
from repro.cluster.faults import (
    CRASH_ENV_VAR,
    WAL_CRASH_POINTS,
    CrashInjected,
    crash_at,
    segment_record_offsets,
)
from repro.core.config import SilkMothConfig
from repro.io.wal import list_segments
from repro.service import SilkMothService
from strategies import token_sets

#: Recovery-report artifact path (the CI crash-smoke leg sets this).
REPORT_ENV_VAR = "SILKMOTH_RECOVERY_REPORT"

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} backend unavailable"),
    )
    for name in ("python", "numpy")
]

_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CONFIG = SilkMothConfig(delta=0.3)

DATA = [
    ["ash bay common", "elm fir"],
    ["ash bay elm common", "oak"],
    ["sky yew common", "ivy"],
    ["ash common", "fir elm"],
    ["oak sky common", ""],
    ["bay fir common", "yew"],
]

BROAD_REFERENCE = ["ash bay common", "oak sky common"]

_programs = st.lists(
    st.one_of(
        st.tuples(st.just("add"), token_sets(min_elements=1)),
        st.tuples(st.just("remove"), st.integers(min_value=0, max_value=30)),
        st.tuples(
            st.just("update"),
            st.integers(min_value=0, max_value=30),
            token_sets(min_elements=1),
        ),
    ),
    min_size=1,
    max_size=6,
)


def _report_recovery(entry: dict) -> None:
    """Append one recovery outcome to the JSONL artifact, when enabled."""
    path = os.environ.get(REPORT_ENV_VAR)
    if path:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")


def _apply_step(service, step) -> None:
    """Apply one program step; no-op when its target id is not live.

    Target selection (modulo the live-id list) is a pure function of
    the service state, so the crashing service and the oracle resolve
    every step identically as long as their states agree -- which is
    exactly what the sweep is proving.
    """
    if step[0] == "add":
        service.add_set(step[1])
        return
    live = service.live_set_ids()
    if not live:
        return
    target = live[step[1] % len(live)]
    if step[0] == "remove":
        service.remove_set(target)
    else:
        service.update_set(target, step[2])


def _oracle_fingerprints(config, program) -> "list[str]":
    """Fingerprint after each program prefix: states[i] = i steps done."""
    oracle = SilkMothService(config)
    states = [oracle.state_fingerprint()]
    for step in program:
        _apply_step(oracle, step)
        states.append(oracle.state_fingerprint())
    return states


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(program=_programs)
@_SETTINGS
def test_crash_point_sweep_recovers_pre_or_post_state(
    backend_name, program
):
    """Every (crash point, hit count) lands on an oracle prefix state.

    For each named crash point, the hit count is deepened until the
    program completes without firing; every fired crash abandons the
    service exactly where the power cut left the disk, recovers, and
    asserts the recovered fingerprint is the oracle's state either
    before or after the interrupted step -- never anything else.
    """
    config = replace(CONFIG, backend=backend_name, scheme="dichotomy")
    states = _oracle_fingerprints(config, program)
    with tempfile.TemporaryDirectory() as root:
        for point in WAL_CRASH_POINTS:
            for after in range(1, len(program) + 3):
                wal_dir = Path(root) / f"{point.replace('.', '-')}-{after}"
                service = None
                crashed_step = None
                with crash_at(point, after=after) as plan:
                    try:
                        service = SilkMothService(
                            config, wal_dir=wal_dir, wal_fsync=False
                        )
                        for index, step in enumerate(program):
                            crashed_step = index
                            _apply_step(service, step)
                            crashed_step = None
                    except CrashInjected:
                        pass  # the simulated power cut: disk stays as-is
                if service is not None:
                    # Process death closes descriptors too; the disk
                    # state the recovery sees is identical either way.
                    service.close()
                if not plan.fired:
                    # The point is not reachable `after` times by this
                    # program; deeper hit counts cannot fire either.
                    break
                recovered = SilkMothService.recover(
                    wal_dir, config, wal_fsync=False
                )
                fingerprint = recovered.state_fingerprint()
                if crashed_step is None:
                    # Crash during construction (the base checkpoint):
                    # nothing was mutated yet.
                    allowed = {states[0]}
                else:
                    allowed = {states[crashed_step], states[crashed_step + 1]}
                _report_recovery(
                    {
                        "harness": "crash_point",
                        "backend": backend_name,
                        "point": point,
                        "after": after,
                        "crashed_step": crashed_step,
                        "replayed": recovered.wal_recovery.replayed,
                        "torn_tail": recovered.wal_recovery.torn_tail,
                        "outcome": "pre"
                        if fingerprint == states[crashed_step or 0]
                        else "post",
                    }
                )
                assert fingerprint in allowed, (
                    f"crash at {point} (hit {after}) recovered to a third "
                    f"state: {fingerprint} not in {allowed}"
                )
                recovered.close()


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(program=_programs)
@_SETTINGS
def test_torn_append_sweep_recovers_prefix_state(backend_name, program):
    """Truncating the log at/inside every record boundary stays exact.

    The log is cut at every byte offset that matters -- each record
    boundary, and mid-record between boundaries -- and recovery from
    the truncated copy must equal the oracle state after exactly the
    surviving complete records; a mid-record cut drops only the torn
    record.
    """
    config = replace(CONFIG, backend=backend_name, scheme="dichotomy")
    states = _oracle_fingerprints(config, program)
    with tempfile.TemporaryDirectory() as root:
        wal_dir = Path(root) / "wal"
        # compact_dead_fraction=1.0 suppresses auto-checkpointing, so
        # the whole program stays in the log as one replayable tail.
        service = SilkMothService(
            config,
            wal_dir=wal_dir,
            wal_fsync=False,
            compact_dead_fraction=1.0,
        )
        logged_states = [service.state_fingerprint()]
        for step in program:
            before = service.wal.appended
            _apply_step(service, step)
            if service.wal.appended > before:
                logged_states.append(service.state_fingerprint())
        service.close()
        assert logged_states[-1] == states[-1]  # oracle agreement
        segments = [
            p for p in list_segments(wal_dir) if p.stat().st_size > 0
        ]
        if not segments:
            return  # program never logged anything (all no-op steps)
        segment = segments[-1]
        offsets = segment_record_offsets(segment)
        cuts = set(offsets)
        for start, end in zip(offsets, offsets[1:]):
            if end - start > 1:
                cuts.add(start + (end - start) // 2)  # mid-record tear
        for cut in sorted(cuts):
            trial = Path(root) / f"cut-{cut}"
            shutil.copytree(wal_dir, trial)
            target = trial / segment.name
            target.write_bytes(segment.read_bytes()[:cut])
            recovered = SilkMothService.recover(
                trial, config, wal_fsync=False
            )
            report = recovered.wal_recovery
            # checkpoint generation + surviving replay = how many logged
            # mutations the truncated directory still describes; the
            # recovered state must be the oracle trace at exactly that
            # prefix, never anything in between or beyond.
            surviving = report.checkpoint_generation + report.replayed
            fingerprint = recovered.state_fingerprint()
            _report_recovery(
                {
                    "harness": "torn_append",
                    "backend": backend_name,
                    "cut": cut,
                    "surviving_mutations": surviving,
                    "torn_tail": report.torn_tail,
                }
            )
            assert fingerprint == logged_states[surviving], (
                f"cut at byte {cut} ({surviving} surviving mutation(s)) "
                "recovered to a third state"
            )
            recovered.close()


@pytest.mark.parametrize(
    "point", ["wal.append.before_write", "wal.append.after_write"]
)
def test_process_worker_crash_then_disk_revive(tmp_path, monkeypatch, point):
    """A worker killed inside append comes back via its WAL, verified.

    ``SILKMOTH_CRASH_AT`` is inherited by the shard worker, which dies
    with a hard exit mid-append; the coordinator refuses the mutation
    (zero replica successes commit nothing), and
    ``revive(from_disk=True)`` must restore exactly the coordinator's
    state: a log that ran ahead of the refused mutation
    (``after_write``) is detected by verification and rebuilt instead.
    """
    monkeypatch.setenv("SILKMOTH_FSYNC", "0")
    # Arm before construction: worker processes inherit the variable.
    # Construction itself never appends (initial sets load through the
    # collection, not the mutation path), so workers come up healthy.
    monkeypatch.setenv(CRASH_ENV_VAR, point)
    cluster = SilkMothCluster.from_sets(
        DATA,
        CONFIG,
        shards=2,
        replicas=1,
        transport="process",
        wal_dir=tmp_path / "wal",
        backoff=0.0,
    )
    oracle = SilkMothCluster.from_sets(DATA, CONFIG, shards=1, replicas=1)
    try:
        with pytest.raises(ClusterDegradedError):
            cluster.remove_set(0)
        # Nothing committed: the id space still holds the set.
        assert cluster.is_live(0)
        assert cluster.lost_shards() != []
        monkeypatch.delenv(CRASH_ENV_VAR)  # revived workers stay alive
        revived = cluster.revive(from_disk=True)
        assert revived >= 1
        expected_fallbacks = 1 if point == "wal.append.after_write" else 0
        assert cluster.wal_revive_fallbacks == expected_fallbacks
        assert cluster.lost_shards() == []
        assert cluster.live_set_ids() == oracle.live_set_ids()
        assert cluster.search(BROAD_REFERENCE) == oracle.search(
            BROAD_REFERENCE
        )
        _report_recovery(
            {
                "harness": "process_worker",
                "point": point,
                "fallbacks": cluster.wal_revive_fallbacks,
            }
        )
    finally:
        cluster.close()
        oracle.close()


def test_recovery_report_artifact_written(tmp_path, monkeypatch):
    """The sweep's JSONL artifact hook honours SILKMOTH_RECOVERY_REPORT."""
    report = tmp_path / "recovery-report.jsonl"
    monkeypatch.setenv(REPORT_ENV_VAR, str(report))
    _report_recovery({"harness": "unit", "outcome": "ok"})
    _report_recovery({"harness": "unit", "outcome": "ok2"})
    lines = report.read_text().splitlines()
    assert [json.loads(line)["outcome"] for line in lines] == ["ok", "ok2"]
    monkeypatch.delenv(REPORT_ENV_VAR)
    _report_recovery({"harness": "unit"})  # no-op without the variable
    assert len(report.read_text().splitlines()) == 2
