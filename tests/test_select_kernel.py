"""The packed select kernel against the reference oracle, bit for bit.

The columnar candidate-selection kernel (:mod:`repro.filters.check`,
``packed``) must be observationally identical to the original
per-posting loop (``reference``) on *any* input: same candidate set
ids, same witnessed ``best`` maps -- including dict insertion order,
which downstream float summation observes -- under tombstones, empty
elements, self-match skips and every size-gate shape, on every
backend.  These suites pin that, plus the packed building blocks:
the posting-merge kernels, the run-level gates, and the numpy
backend's lane-parallel Myers batch scorer.
"""

from __future__ import annotations

from array import array
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.backends import available_backends, get_backend
from repro.backends.select import (
    gate_keys,
    merge_distinct_postings_python,
    merge_sorted_unique,
)
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection
from repro.filters import check
from repro.filters.check import (
    KNOWN_SELECT_KERNELS,
    SELECT_KERNEL_ENV_VAR,
    active_select_kernel,
    select_and_check,
    use_select_kernel,
)
from repro.index.inverted import PACK_SHIFT, InvertedIndex, pack_posting
from repro.sim.functions import SimilarityFunction, SimilarityKind
from repro.sim.memo import SimilarityMemo
from repro.signatures import get_scheme
from strategies import (
    collections,
    edit_configs,
    string_collections,
    string_sets,
    token_configs,
    token_sets,
)

BACKENDS = [
    pytest.param(
        name,
        marks=()
        if name in available_backends()
        else pytest.mark.skip(reason=f"{name} backend unavailable"),
    )
    for name in ("python", "numpy")
]

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture
def packed_kernel():
    previous = use_select_kernel("packed")
    yield
    use_select_kernel(previous)


def _infos_under(kernel: str, *args, **kwargs):
    previous = use_select_kernel(kernel)
    try:
        infos = select_and_check(*args, **kwargs)
    finally:
        use_select_kernel(previous)
    # set id, best map AND its insertion order (float summation in
    # ``gain`` observes it).
    return [(info.set_id, list(info.best.items())) for info in infos]


# ----------------------------------------------------------------------
# Kernel switch plumbing
# ----------------------------------------------------------------------
class TestKernelSwitch:
    def test_default_is_packed(self):
        assert active_select_kernel() in KNOWN_SELECT_KERNELS

    def test_switch_returns_previous(self):
        previous = use_select_kernel("reference")
        try:
            assert active_select_kernel() == "reference"
        finally:
            use_select_kernel(previous)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown select kernel"):
            use_select_kernel("turbo")

    def test_env_init(self, monkeypatch):
        previous = active_select_kernel()
        monkeypatch.setenv(SELECT_KERNEL_ENV_VAR, "reference")
        try:
            check._init_select_kernel_from_env()
            assert active_select_kernel() == "reference"
        finally:
            use_select_kernel(previous)

    def test_env_init_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(SELECT_KERNEL_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            check._init_select_kernel_from_env()


# ----------------------------------------------------------------------
# Posting-merge kernels
# ----------------------------------------------------------------------
def _runs_strategy():
    """Sorted unique packed-key runs over a small id space."""
    key = st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=5),
    )
    run = st.frozensets(key, max_size=12).map(
        lambda pairs: array(
            "q", sorted(pack_posting(s, e) for s, e in pairs)
        )
    )
    return st.lists(run, min_size=0, max_size=8)


class TestMergeKernels:
    @_SETTINGS
    @given(runs=_runs_strategy())
    def test_merge_equals_set_union(self, runs):
        merged = list(merge_sorted_unique(runs))
        expected = sorted(set().union(*map(set, runs)) if runs else set())
        assert merged == expected

    def test_single_run_shared(self):
        run = array("q", [1, 5, 9])
        assert merge_sorted_unique([run]) is run

    def test_gallop_path(self):
        # One dominant run, tiny rest: exercises the galloping branch.
        dominant = array("q", range(0, 4000, 2))
        rest = array("q", [1, 2, 4001])
        merged = list(merge_sorted_unique([rest, dominant]))
        assert merged == sorted(set(dominant) | set(rest))

    @_SETTINGS
    @given(
        runs=_runs_strategy(),
        skip=st.sampled_from((None, 0, 3, 99)),
        dead=st.frozensets(st.integers(min_value=0, max_value=7), max_size=3),
        window=st.sampled_from(
            (None, (0.0, 2.0), (2.0, 99.0), (5.0, 4.0), (-float("inf"), float("inf")))
        ),
    )
    def test_python_and_numpy_merges_agree(self, runs, skip, dead, window):
        pytest.importorskip("numpy")
        from repro.backends.numpy_backend import NumpyBackend

        sizes = array("q", [(i * 7) % 5 for i in range(8)])
        reference = merge_distinct_postings_python(
            runs, skip, frozenset(dead), sizes, window
        )
        vectorised = NumpyBackend()
        vectorised.select_min_postings = 0
        got = vectorised.merge_distinct_postings(
            runs, skip, frozenset(dead), sizes, window
        )
        assert list(got[0]) == list(reference[0])
        assert got[1:] == reference[1:]

    def test_gate_noop_returns_input(self):
        keys = array("q", [pack_posting(1, 0), pack_posting(2, 1)])
        kept, drops = gate_keys(keys, None, frozenset(), array("q"), None)
        assert kept is keys and drops == 0

    def test_gate_counts_size_drops(self):
        keys = [pack_posting(0, 0), pack_posting(0, 1), pack_posting(1, 0)]
        sizes = array("q", [10, 2])
        kept, drops = gate_keys(keys, None, frozenset(), sizes, (1.0, 5.0))
        assert kept == [pack_posting(1, 0)] and drops == 2


# ----------------------------------------------------------------------
# Packed index storage invariants
# ----------------------------------------------------------------------
class TestPackedIndex:
    def test_posting_keys_sorted_unique(self):
        collection = SetCollection.from_strings([["a b", "b c"], ["b", "a c"]])
        index = InvertedIndex(collection)
        for token in index.tokens():
            keys = list(index.posting_keys(token))
            assert keys == sorted(set(keys))
            # Round-trips through the tuple view.
            assert [
                pack_posting(p.set_id, p.element_index)
                for p in index.postings(token)
            ] == keys

    def test_set_sizes_tracks_additions(self):
        collection = SetCollection.from_strings([["a"], ["b c", "d"]])
        index = InvertedIndex(collection)
        assert list(index.set_sizes()) == [1, 2]

    def test_tombstone_then_compact(self):
        collection = SetCollection.from_strings([["a"], ["a b"], ["b"]])
        index = InvertedIndex(collection)
        record = collection[1]
        collection.remove_set(1)
        index.note_removed(record)
        # Postings survive until compaction (lazy deletes)...
        token = next(iter(record.elements[0].index_tokens))
        assert any(p.set_id == 1 for p in index.postings(token))
        index.compact()
        for tok in index.tokens():
            assert all(p.set_id != 1 for p in index.postings(tok))


# ----------------------------------------------------------------------
# The numpy lane-parallel Myers batch scorer
# ----------------------------------------------------------------------
class TestEditValuesBatch:
    @_SETTINGS
    @given(
        kind=st.sampled_from((SimilarityKind.EDS, SimilarityKind.NEDS)),
        alpha=st.sampled_from((0.0, 0.35, 0.6, 0.9)),
        tasks=st.lists(
            st.tuples(
                st.text(alphabet="abAB", max_size=70),
                st.text(alphabet="abABé", max_size=90),
                st.sampled_from((0.0, 0.2, 0.6, 0.95)),
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_batch_equals_scalar(self, kind, alpha, tasks):
        pytest.importorskip("numpy")
        from repro.backends.numpy_backend import NumpyBackend

        phi = SimilarityFunction(kind, alpha)
        backend = NumpyBackend()
        backend.edit_batch_min_tasks = 0
        got = backend.edit_values(phi, tasks)
        expected = [phi.edit_at_least(x, y, floor) for x, y, floor in tasks]
        assert got == expected

    def test_memoized_scalar_default_matches(self):
        phi = SimilarityFunction(SimilarityKind.EDS, 0.5)
        memo = SimilarityMemo(capacity=16)
        tasks = [("abc", "abd", 0.0), ("abc", "abd", 0.0), ("a", "b", 0.6)]
        values = get_backend("python").edit_values(phi, tasks, memo=memo)
        assert values == [phi.edit_at_least(x, y, f) for x, y, f in tasks]
        assert memo.hits >= 1  # the repeated task was served by the memo

    def test_long_patterns_fall_back(self):
        pytest.importorskip("numpy")
        from repro.backends.numpy_backend import NumpyBackend

        phi = SimilarityFunction(SimilarityKind.NEDS, 0.4)
        backend = NumpyBackend()
        backend.edit_batch_min_tasks = 0
        tasks = [("x" * 200, "x" * 199 + "y", 0.0), ("", "abc", 0.0)]
        assert backend.edit_values(phi, tasks) == [
            phi.edit_at_least(x, y, f) for x, y, f in tasks
        ]


# ----------------------------------------------------------------------
# select_and_check: packed == reference, directly
# ----------------------------------------------------------------------
def _select_fixture(sets, reference_elements, kind, alpha, theta):
    collection = SetCollection.from_strings(sets, kind=kind)
    reference = collection.sibling().add_set(reference_elements)
    phi = SimilarityFunction(kind, alpha)
    index = InvertedIndex(collection)
    signature = get_scheme("weighted").generate(reference, theta, phi, index)
    return reference, collection, index, phi, signature


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestPackedMatchesReference:
    @_SETTINGS
    @given(
        sets=collections(min_sets=2, max_sets=6),
        reference=token_sets(min_elements=1, max_elements=4),
        alpha=st.sampled_from((0.0, 0.35)),
        tombstone=st.booleans(),
        skip=st.sampled_from((None, 0)),
        window=st.sampled_from(
            (None, (-float("inf"), float("inf")), (1.0, 3.0), (4.0, 2.0))
        ),
        apply_check=st.booleans(),
    )
    def test_token_kind_infos_identical(
        self, backend_name, sets, reference, alpha, tombstone, skip, window, apply_check
    ):
        fixture = _select_fixture(
            sets, reference, SimilarityKind.JACCARD, alpha, theta=1.1
        )
        reference_record, collection, index, phi, signature = fixture
        # A None signature means the scheme degraded to a full scan;
        # select_and_check is never called on that path.
        assume(signature is not None)
        if tombstone and len(sets) > 1:
            dead = collection.remove_set(len(sets) - 1)
            index.note_removed(dead)
        backend = get_backend(backend_name)
        kwargs = dict(
            apply_check=apply_check,
            size_range=window,
            skip_set=skip,
            backend=backend,
        )
        args = (reference_record, signature, index, phi, 1.1, collection)
        assert _infos_under("packed", *args, **kwargs) == _infos_under(
            "reference", *args, **kwargs
        )

    @_SETTINGS
    @given(
        sets=string_collections(min_sets=2, max_sets=5),
        reference=string_sets(min_elements=1, max_elements=3),
        kind=st.sampled_from((SimilarityKind.EDS, SimilarityKind.NEDS)),
        alpha=st.sampled_from((0.0, 0.35, 0.6)),
        memoized=st.booleans(),
        window=st.sampled_from((None, (1.0, 3.0))),
    )
    def test_edit_kind_infos_identical(
        self, backend_name, sets, reference, kind, alpha, memoized, window
    ):
        collection = SetCollection.from_strings(sets, kind=kind, q=2)
        reference_record = collection.sibling().add_set(reference)
        phi = SimilarityFunction(kind, alpha)
        index = InvertedIndex(collection)
        signature = get_scheme("weighted").generate(
            reference_record, 1.1, phi, index
        )
        assume(signature is not None)
        backend = get_backend(backend_name)
        results = []
        for kernel in ("packed", "reference"):
            memo = SimilarityMemo(capacity=64) if memoized else None
            results.append(
                _infos_under(
                    kernel,
                    reference_record,
                    signature,
                    index,
                    phi,
                    1.1,
                    collection,
                    apply_check=False,
                    size_range=window,
                    backend=backend,
                    memo=memo,
                )
            )
        assert results[0] == results[1]


# ----------------------------------------------------------------------
# Whole-engine equality (kernel choice is invisible end to end)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_name", BACKENDS)
class TestEngineEquality:
    def _search_all(self, sets, config):
        collection = SetCollection.from_strings(
            sets, kind=config.similarity, q=config.effective_q
        )
        engine = SilkMoth(collection, config)
        return [
            [(r.set_id, r.score) for r in engine.search(record, skip_set=record.set_id)]
            for record in collection.iter_live()
        ]

    @_SETTINGS
    @given(sets=collections(min_sets=1, max_sets=5), config=token_configs())
    def test_token_kinds(self, backend_name, sets, config):
        config = replace(config, backend=backend_name)
        previous = use_select_kernel("packed")
        try:
            packed = self._search_all(sets, config)
            use_select_kernel("reference")
            reference = self._search_all(sets, config)
        finally:
            use_select_kernel(previous)
        assert packed == reference

    @_SETTINGS
    @given(sets=string_collections(min_sets=1, max_sets=4), config=edit_configs())
    def test_edit_kinds(self, backend_name, sets, config):
        config = replace(config, backend=backend_name)
        previous = use_select_kernel("packed")
        try:
            packed = self._search_all(sets, config)
            use_select_kernel("reference")
            reference = self._search_all(sets, config)
        finally:
            use_select_kernel(previous)
        assert packed == reference


# ----------------------------------------------------------------------
# Select-funnel accounting
# ----------------------------------------------------------------------
class TestFunnelCounters:
    def test_packed_kernel_reports_funnel(self, packed_kernel):
        sets = [["a b", "b c"], ["a", "c d"], ["b c", "d"]]
        collection = SetCollection.from_strings(sets)
        engine = SilkMoth(collection, _default_config())
        record = collection[0]
        _, stats = engine.search_with_stats(record, skip_set=record.set_id)
        assert stats.select_postings_scanned >= stats.select_distinct_pairs > 0
        # The pass folds into the engine's run aggregate unchanged.
        assert (
            engine.stats.select_postings_scanned
            == stats.select_postings_scanned
        )

    def test_reference_kernel_leaves_funnel_untouched(self):
        sets = [["a b", "b c"], ["a", "c d"], ["b c", "d"]]
        collection = SetCollection.from_strings(sets)
        engine = SilkMoth(collection, _default_config())
        previous = use_select_kernel("reference")
        try:
            record = collection[0]
            _, stats = engine.search_with_stats(record, skip_set=record.set_id)
        finally:
            use_select_kernel(previous)
        assert stats.select_postings_scanned == 0
        assert stats.select_distinct_pairs == 0


def _default_config():
    from repro.core.config import SilkMothConfig

    return SilkMothConfig(
        similarity=SimilarityKind.JACCARD, delta=0.5, alpha=0.0
    )
