"""CLI behaviour: argument plumbing, output formats, error handling.

The CLI is exercised in-process through :func:`repro.cli.main` (fast,
and the exit codes / stdio contract is identical to the console
script).
"""

import json

import pytest

from repro.cli import build_parser, load_sets, main
from repro.io.writers import read_discovery_csv, read_search_json


@pytest.fixture
def titles(tmp_path):
    path = tmp_path / "titles.txt"
    path.write_text(
        "efficient related set discovery\n"
        "efficient related set discovery methods\n"
        "an unrelated publication title\n"
    )
    return path


@pytest.fixture
def jsonl(tmp_path):
    path = tmp_path / "sets.jsonl"
    rows = [
        ["77 Mass Ave Boston MA", "5th St Seattle WA"],
        ["77 Massachusetts Avenue Boston MA", "Fifth Street Seattle WA"],
        ["One Kendall Square Cambridge MA"],
    ]
    path.write_text("\n".join(json.dumps(row) for row in rows) + "\n")
    return path


@pytest.fixture
def table(tmp_path):
    path = tmp_path / "table.csv"
    path.write_text(
        "city,state\n"
        "Boston,MA\n"
        "Seattle,WA\n"
        "Chicago,IL\n"
        "Cambridge,MA\n"
        "Somerville,MA\n"
    )
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_defaults(self, titles):
        args = build_parser().parse_args(["discover", str(titles)])
        assert args.delta == 0.7
        assert args.scheme == "dichotomy"
        assert args.metric == "similarity"

    def test_search_requires_reference(self, titles):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", str(titles)])


class TestLoadSets:
    def test_text(self, titles):
        sets, labels = load_sets(str(titles), "text")
        assert len(sets) == 3
        assert labels[0] == "line1"

    def test_jsonl(self, jsonl):
        sets, labels = load_sets(str(jsonl), "jsonl")
        assert len(sets) == 3
        assert sets[2] == ["One Kendall Square Cambridge MA"]

    def test_csv_columns(self, table):
        sets, labels = load_sets(str(table), "csv-columns")
        assert labels == ["city", "state"]

    def test_csv_schema(self, table):
        sets, labels = load_sets(str(table), "csv-schema")
        assert len(sets) == 1
        assert labels == ["table"]

    def test_unknown_format(self, titles):
        with pytest.raises(ValueError):
            load_sets(str(titles), "parquet")


class TestDiscover:
    def test_stdout_tsv(self, titles, capsys):
        code = main(
            ["discover", str(titles), "--delta", "0.5", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0] == "reference\tset\tscore\trelatedness"
        # The two near-duplicate titles must be reported as related.
        assert any("line1\tline2" in line for line in lines[1:])

    def test_csv_output(self, titles, tmp_path):
        out = tmp_path / "pairs.csv"
        code = main(
            [
                "discover",
                str(titles),
                "--delta",
                "0.5",
                "--quiet",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        results = read_discovery_csv(out)
        assert len(results) >= 1

    def test_bad_output_extension(self, titles, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "discover",
                    str(titles),
                    "--quiet",
                    "--output",
                    str(tmp_path / "pairs.parquet"),
                ]
            )

    def test_empty_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        assert main(["discover", str(empty), "--quiet"]) == 1

    def test_edit_similarity_flags(self, titles, capsys):
        code = main(
            [
                "discover",
                str(titles),
                "--sim",
                "eds",
                "--alpha",
                "0.8",
                "--delta",
                "0.6",
                "--quiet",
            ]
        )
        assert code == 0

    def test_summary_line_on_stderr(self, titles, capsys):
        main(["discover", str(titles), "--delta", "0.5"])
        err = capsys.readouterr().err
        assert "related pair(s)" in err


class TestSearch:
    def test_search_finds_duplicate(self, jsonl, capsys):
        code = main(
            [
                "search",
                str(jsonl),
                "--format",
                "jsonl",
                "--reference",
                "0",
                "--delta",
                "0.2",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "set1" in out

    def test_reference_out_of_range(self, jsonl, capsys):
        code = main(
            ["search", str(jsonl), "--reference", "9", "--quiet"]
        )
        assert code == 1

    def test_containment_metric(self, table, capsys):
        code = main(
            [
                "search",
                str(table),
                "--format",
                "csv-columns",
                "--reference",
                "0",
                "--metric",
                "containment",
                "--delta",
                "0.4",
                "--quiet",
            ]
        )
        assert code == 0

    def test_top_k_json_output(self, jsonl, tmp_path):
        out = tmp_path / "top.json"
        code = main(
            [
                "search",
                str(jsonl),
                "--reference",
                "0",
                "--top-k",
                "1",
                "--delta",
                "0.9",
                "--quiet",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        results = read_search_json(out)
        assert len(results) <= 1


class TestStats:
    def test_profile(self, jsonl, capsys):
        assert main(["stats", str(jsonl), "--format", "jsonl"]) == 0
        out = capsys.readouterr().out
        assert "sets:" in out
        assert "elements per set:" in out

    def test_missing_file_exit_code(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.txt")]) == 2
        assert "error:" in capsys.readouterr().err


class TestExplain:
    def test_explain_pair(self, jsonl, capsys):
        code = main(
            [
                "explain",
                str(jsonl),
                "--format",
                "jsonl",
                "--reference",
                "0",
                "--candidate",
                "1",
                "--delta",
                "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reference set 0 vs candidate set 1" in out
        assert "verdict" in out

    def test_explain_index_validation(self, jsonl, capsys):
        code = main(
            [
                "explain",
                str(jsonl),
                "--format",
                "jsonl",
                "--reference",
                "0",
                "--candidate",
                "99",
            ]
        )
        assert code == 1
        assert "out of range" in capsys.readouterr().err


class TestSelfcheck:
    def test_passes_on_clean_input(self, titles, capsys):
        code = main(
            ["selfcheck", str(titles), "--delta", "0.5", "--sample", "3"]
        )
        assert code == 0
        assert "selfcheck passed" in capsys.readouterr().out

    def test_sample_zero_checks_all(self, jsonl, capsys):
        code = main(
            [
                "selfcheck",
                str(jsonl),
                "--format",
                "jsonl",
                "--delta",
                "0.2",
                "--sample",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 reference(s)" in out

    def test_edit_similarity_selfcheck(self, titles, capsys):
        code = main(
            [
                "selfcheck",
                str(titles),
                "--sim",
                "eds",
                "--alpha",
                "0.8",
                "--delta",
                "0.6",
            ]
        )
        assert code == 0


class TestConsoleEntryPoint:
    def test_module_invocation(self, titles):
        import subprocess
        import sys

        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "stats",
                str(titles),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "sets:" in completed.stdout


class TestServiceCommands:
    def _snapshot(self, titles, tmp_path, extra=()):
        path = tmp_path / "svc.json"
        code = main(
            ["service", "snapshot", str(titles), "--delta", "0.5", "--quiet",
             "--output", str(path), *extra]
        )
        assert code == 0
        return path

    def test_snapshot_and_info(self, titles, tmp_path, capsys):
        path = self._snapshot(titles, tmp_path, extra=["--remove", "2"])
        assert main(["service", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "live sets:    2" in out
        assert "tombstones:   1 [2]" in out

    def test_query_serves_batch_with_cache(self, titles, tmp_path, capsys):
        path = self._snapshot(titles, tmp_path)
        code = main(
            ["service", "query", str(path), "--references", str(titles),
             "--delta", "0.5", "--repeat", "2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("reference\tset\tscore\trelatedness")
        assert "cache hit rate" in captured.err

    def test_query_rejects_nonpositive_repeat(self, titles, tmp_path, capsys):
        path = self._snapshot(titles, tmp_path)
        code = main(
            ["service", "query", str(path), "--references", str(titles),
             "--repeat", "0"]
        )
        assert code == 1
        assert "--repeat must be >= 1" in capsys.readouterr().err

    def test_query_rejects_mismatched_similarity(self, titles, tmp_path, capsys):
        path = self._snapshot(titles, tmp_path)
        code = main(
            ["service", "query", str(path), "--references", str(titles),
             "--sim", "eds", "--alpha", "0.8"]
        )
        assert code == 2
        assert "tokenised for 'jaccard'" in capsys.readouterr().err

    def test_snapshot_rejects_bad_remove_id(self, titles, tmp_path, capsys):
        code = main(
            ["service", "snapshot", str(titles), "--remove", "99",
             "--output", str(tmp_path / "x.json")]
        )
        assert code == 1
        assert "out of range" in capsys.readouterr().err

    def test_removed_set_never_served(self, titles, tmp_path, capsys):
        path = self._snapshot(titles, tmp_path, extra=["--remove", "0"])
        code = main(
            ["service", "query", str(path), "--references", str(titles),
             "--delta", "0.5", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        rows = [line.split("\t") for line in out.strip().splitlines()[1:]]
        assert all(row[1] != "0" for row in rows)


class TestClusterCommands:
    def _manifest(self, titles, tmp_path, extra=()):
        path = tmp_path / "cluster.json"
        code = main(
            ["cluster", "shard", str(titles), "--shards", "2", "--delta",
             "0.5", "--quiet", "--output", str(path), *extra]
        )
        assert code == 0
        return path

    def test_shard_writes_manifest_and_shard_files(self, titles, tmp_path):
        path = self._manifest(titles, tmp_path)
        assert path.exists()
        assert (tmp_path / "cluster-shard0.json").exists()
        assert (tmp_path / "cluster-shard1.json").exists()

    def test_info_describes_cluster(self, titles, tmp_path, capsys):
        path = self._manifest(titles, tmp_path, extra=["--remove", "2"])
        assert main(["cluster", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "shards:       2" in out
        assert "live sets:    2" in out
        assert "routing:      summary intersection" in out
        assert "shard 0:" in out and "shard 1:" in out

    def test_query_serves_batch_with_routing_stats(
        self, titles, tmp_path, capsys
    ):
        path = self._manifest(titles, tmp_path)
        code = main(
            ["cluster", "query", str(path), "--references", str(titles),
             "--delta", "0.5", "--repeat", "2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("reference\tset\tscore\trelatedness")
        assert "cache hit rate" in captured.err
        assert "routed" in captured.err and "skipped" in captured.err

    def test_query_matches_single_node_service(
        self, titles, tmp_path, capsys
    ):
        cluster_manifest = self._manifest(titles, tmp_path)
        code = main(
            ["cluster", "query", str(cluster_manifest), "--references",
             str(titles), "--delta", "0.5", "--quiet"]
        )
        assert code == 0
        cluster_out = capsys.readouterr().out
        snapshot = tmp_path / "service.json"
        assert main(
            ["service", "snapshot", str(titles), "--delta", "0.5",
             "--quiet", "--output", str(snapshot)]
        ) == 0
        code = main(
            ["service", "query", str(snapshot), "--references", str(titles),
             "--delta", "0.5", "--quiet"]
        )
        assert code == 0
        assert capsys.readouterr().out == cluster_out

    def test_query_rejects_mismatched_similarity(self, titles, tmp_path, capsys):
        path = self._manifest(titles, tmp_path)
        code = main(
            ["cluster", "query", str(path), "--references", str(titles),
             "--sim", "eds", "--alpha", "0.8"]
        )
        assert code == 2
        assert "tokenised for 'jaccard'" in capsys.readouterr().err

    def test_shard_rejects_bad_remove_id(self, titles, tmp_path, capsys):
        code = main(
            ["cluster", "shard", str(titles), "--remove", "99",
             "--output", str(tmp_path / "x.json")]
        )
        assert code == 1
        assert "out of range" in capsys.readouterr().err
