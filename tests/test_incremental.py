"""Incremental ingestion: engine.add_set must equal a fresh rebuild."""

import random

import pytest

from repro.core.config import Relatedness, SilkMothConfig
from repro.core.engine import SilkMoth
from repro.core.records import SetCollection


def _random_sets(rng, n_sets, vocab_size=10):
    vocab = [f"w{i}" for i in range(vocab_size)]
    sets = []
    for _ in range(n_sets):
        sets.append(
            [
                " ".join(rng.sample(vocab, rng.randint(1, 4)))
                for _ in range(rng.randint(1, 4))
            ]
        )
    return sets


def _pairs(engine):
    return sorted((r.reference_id, r.set_id) for r in engine.discover())


class TestIncrementalIngestion:
    def test_add_then_search_equals_rebuild(self):
        rng = random.Random(61)
        initial = _random_sets(rng, 12)
        extra = _random_sets(rng, 6)
        config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.5)

        incremental = SilkMoth(SetCollection.from_strings(initial), config)
        for elements in extra:
            incremental.add_set(elements)

        rebuilt = SilkMoth(SetCollection.from_strings(initial + extra), config)
        assert _pairs(incremental) == _pairs(rebuilt)

    def test_new_set_is_immediately_searchable(self):
        config = SilkMothConfig(delta=0.6)
        engine = SilkMoth(SetCollection.from_strings([["a b c"]]), config)
        record = engine.add_set(["a b c"])
        results = engine.search(engine.collection[0], skip_set=0)
        assert [r.set_id for r in results] == [record.set_id]

    def test_add_set_returns_record_with_next_id(self):
        config = SilkMothConfig(delta=0.6)
        engine = SilkMoth(SetCollection.from_strings([["a"], ["b"]]), config)
        record = engine.add_set(["c"])
        assert record.set_id == 2
        assert len(engine.collection) == 3

    def test_index_postings_stay_sorted(self):
        rng = random.Random(62)
        config = SilkMothConfig(delta=0.6)
        engine = SilkMoth(
            SetCollection.from_strings(_random_sets(rng, 8)), config
        )
        for elements in _random_sets(rng, 8):
            engine.add_set(elements)
        for token in range(len(engine.collection.vocabulary)):
            postings = engine.index.postings(token)
            assert postings == sorted(postings)

    def test_incremental_matches_brute_force(self):
        from repro.baselines.brute_force import brute_force_discover

        rng = random.Random(63)
        config = SilkMothConfig(delta=0.5)
        engine = SilkMoth(
            SetCollection.from_strings(_random_sets(rng, 10)), config
        )
        for elements in _random_sets(rng, 10):
            engine.add_set(elements)
        got = _pairs(engine)
        expected = sorted(
            (r.reference_id, r.set_id)
            for r in brute_force_discover(engine.collection, config)
        )
        assert got == expected
