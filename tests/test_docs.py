"""Documentation gates: coverage, cross-references, and freshness.

Documentation only stays true if something fails when it drifts, so
tier-1 enforces:

* 100% docstring coverage over ``src/repro`` (``tools/check_docstrings.py``,
  an `interrogate` equivalent with no dependencies);
* every relative link and anchor in README.md and ``docs/`` resolves
  (``tools/check_links.py``);
* ``docs/parameters.md`` documents every ``SilkMothConfig`` field and
  every signature scheme, so adding a knob without documenting it
  fails here.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"


def _run_tool(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / name)],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_docs_suite_exists():
    """The documentation suite ships with the repository."""
    for name in ("paper-map.md", "architecture.md", "parameters.md"):
        assert (DOCS / name).is_file(), f"docs/{name} is missing"


def test_docstring_coverage_gate():
    """Every public module/class/function in src/repro is documented."""
    completed = _run_tool("check_docstrings.py")
    assert completed.returncode == 0, (
        completed.stdout + "\n" + completed.stderr
    )
    assert "100.0%" in completed.stdout


def test_markdown_links_resolve():
    """No broken relative links or anchors in README.md / docs/."""
    completed = _run_tool("check_links.py")
    assert completed.returncode == 0, (
        completed.stdout + "\n" + completed.stderr
    )


def test_parameters_doc_covers_every_config_field():
    """docs/parameters.md names every SilkMothConfig field."""
    from repro.core.config import SilkMothConfig

    text = (DOCS / "parameters.md").read_text()
    for field in dataclasses.fields(SilkMothConfig):
        assert f"`{field.name}`" in text, (
            f"SilkMothConfig.{field.name} is undocumented in docs/parameters.md"
        )


def test_parameters_doc_covers_every_scheme():
    """docs/parameters.md names every signature scheme (and 'auto')."""
    from repro.signatures import SCHEME_NAMES

    text = (DOCS / "parameters.md").read_text()
    for scheme in SCHEME_NAMES + ("auto",):
        assert f"`{scheme}`" in text, (
            f"scheme {scheme!r} is undocumented in docs/parameters.md"
        )


def test_parameters_doc_states_the_q_constraint():
    """The constraint that motivated the planner stays documented."""
    text = (DOCS / "parameters.md").read_text()
    assert "q < alpha / (1 - alpha)" in text
    assert "full-scan fallback" in text


def test_readme_points_at_docs():
    """README links the documentation suite."""
    text = (REPO_ROOT / "README.md").read_text()
    for target in ("docs/architecture.md", "docs/parameters.md", "docs/paper-map.md"):
        assert target in text, f"README.md does not link {target}"
