"""Every example script must run cleanly against the public API.

Examples are the documentation users copy from, so a broken example is
a documentation bug; this module executes each one in a subprocess.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


def test_quickstart_exists():
    assert (EXAMPLES_DIR / "quickstart.py").exists()


def test_examples_have_docstrings():
    for script in EXAMPLES:
        source = script.read_text()
        assert source.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
        assert "Run:" in source, f"{script.name} docstring lacks a Run: line"
