"""Data integration: discover joinable column pairs across a dirty database.

A common data-lake task: given many columns from different sources,
which pairs are *joinable* -- i.e. one column approximately contains
the other even though values are abbreviated, typo'd and reordered?
This is the paper's approximate-inclusion-dependency application
(Section 8.1), run here on synthetic address columns in the style of
the motivating Table 1.

The demo plants three (clean, dirty) column pairs among decoys, runs
SET-CONTAINMENT discovery, and checks that exactly the planted pairs
surface.

Run:  python examples/data_integration.py
"""

from repro import Relatedness, SetCollection, SilkMoth, SilkMothConfig
from repro.datasets.addresses import address_database


def main() -> None:
    database = address_database(
        n_columns=8, rows_per_column=25, joinable_pairs=3, seed=11
    )
    names = list(database)
    print(f"database with {len(names)} columns:")
    for name in names:
        preview = database[name][0]
        print(f"   {name:<14} e.g. {preview!r}")

    # Each column is a set; each address a set element; each word a token.
    collection = SetCollection.from_strings(database.values())
    config = SilkMothConfig(
        metric=Relatedness.CONTAINMENT,
        delta=0.55,   # "most of the reference column matches"
        alpha=0.3,    # ignore weak row-to-row matches
    )
    engine = SilkMoth(collection, config)

    print("\nsearching for joinable pairs (SET-CONTAINMENT, delta=0.55) ...")
    found: list[tuple[str, str, float]] = []
    for reference in collection:
        for result in engine.search(reference, skip_set=reference.set_id):
            found.append(
                (
                    names[reference.set_id],
                    names[result.set_id],
                    result.relatedness,
                )
            )

    print(f"\n{len(found)} joinable direction(s):")
    for ref_name, cand_name, value in sorted(found, key=lambda t: -t[2]):
        print(f"   {ref_name:<14} ->  {cand_name:<14} containment={value:.3f}")

    # The funnel: how much work the signatures and filters saved.
    stats = engine.stats
    n = len(collection)
    print(
        f"\nfunnel over {stats.passes} searches x {n} sets "
        f"({stats.passes * (n - 1)} possible comparisons):"
    )
    print(f"   initial candidates : {stats.initial_candidates}")
    print(f"   after check filter : {stats.after_check}")
    print(f"   after NN filter    : {stats.after_nn}")
    print(f"   verified (matching): {stats.verified}")

    planted = {(f"addr_{i}", f"addr_{i}_dirty") for i in range(3)}
    hits = {
        tuple(sorted((a, b), key=lambda s: (s.endswith("_dirty"), s)))
        for a, b, _ in found
    }
    missing = planted - hits
    if missing:
        print(f"\nWARNING: planted pairs not found: {missing}")
    else:
        print("\nall planted joinable pairs were recovered")


if __name__ == "__main__":
    main()
