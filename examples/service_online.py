"""Online serving: add, remove, and query against a live service.

The batch engine answers one query over a frozen collection; the
service keeps the engine resident and stays exact while the collection
changes underneath it.  This walkthrough runs a tiny address service
through the full online lifecycle: ingest, query (cold then cached),
mutate (which invalidates the cache), batch with duplicates, and
snapshot/restore.

Run:  PYTHONPATH=src python examples/service_online.py
"""

import tempfile
from pathlib import Path

from repro import Relatedness, SilkMothConfig, SilkMothService

SETS = [
    ["77 Massachusetts Avenue Boston MA", "Fifth Street Seattle WA"],
    ["77 Mass Ave Boston MA", "5th St Seattle WA"],
    ["One Kendall Square Cambridge MA"],
]
REFERENCE = ["77 Mass Avenue Boston MA", "Fifth St Seattle WA"]


def show(label: str, results) -> None:
    ids = [r.set_id for r in results]
    print(f"{label:<28} -> related set ids {ids}")


def main() -> None:
    config = SilkMothConfig(metric=Relatedness.SIMILARITY, delta=0.25)
    service = SilkMothService(config)

    # Ingest: each set is searchable the moment add_set returns.
    for elements in SETS:
        service.add_set(elements)
    print(f"serving {len(service)} live sets\n")

    # Cold query runs the full signature/filter/verify pipeline ...
    show("cold query", service.search(REFERENCE))
    # ... the repeat is a cache hit: no pipeline pass at all.
    show("same query (cached)", service.search(REFERENCE))
    print(
        f"pipeline passes so far: {service.engine.stats.passes} "
        f"(cache hits: {service.stats.cache_hits})\n"
    )

    # Mutations bump the write generation, so the cache can never serve
    # a stale answer.
    service.remove_set(0)
    show("after remove_set(0)", service.search(REFERENCE))
    new = service.update_set(1, ["77 Mass Ave Boston MA", "Main St Austin TX"])
    show(f"after update (new id {new.set_id})", service.search(REFERENCE))

    # Batches deduplicate before touching the pipeline.
    batch = service.search_many([REFERENCE, REFERENCE, ["One Kendall Square"]])
    print(
        f"\nbatch of 3 answered with {service.stats.batch_queries_deduplicated} "
        "duplicate collapsed"
    )
    show("batch[2]", batch[2])

    # Snapshot and restore: live-set membership and results survive.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "service.json"
        service.save(path)
        restored = SilkMothService.load(path, config)
        assert restored.live_set_ids() == service.live_set_ids()
        show("restored service", restored.search(REFERENCE))

    stats = service.stats
    print(
        f"\nlifetime: {stats.queries} queries, "
        f"hit rate {stats.cache_hit_rate:.0%}, "
        f"{stats.mutations} mutations, {stats.compactions} compactions"
    )


if __name__ == "__main__":
    main()
