"""Schema matching: find web tables with similar schemas.

The schema matching application (Section 8.1): each table's schema is a
set, each column (attribute) an element, and the column's values are
its tokens.  Two schemas are related when their columns can be aligned
so that most aligned column pairs share most of their values -- even if
no column matches another exactly.

Run:  python examples/schema_match.py
"""

from repro import Relatedness, SetCollection, SilkMoth, SilkMothConfig
from repro.datasets.webtable import webtable_like_schemas


def main() -> None:
    schemas = webtable_like_schemas(400, seed=31, duplicate_fraction=0.25)
    collection = SetCollection.from_strings(schemas)

    config = SilkMothConfig(
        metric=Relatedness.SIMILARITY,
        delta=0.7,
        alpha=0.0,       # no per-column threshold (Table 3 default)
        scheme="dichotomy",
    )
    engine = SilkMoth(collection, config)
    pairs = engine.discover()

    print(f"{len(schemas)} schemas, {len(pairs)} related schema pairs\n")
    for pair in pairs[:5]:
        print(f"schemas {pair.reference_id} ~ {pair.set_id} "
              f"(similarity {pair.relatedness:.2f})")
        left = collection[pair.reference_id]
        right = collection[pair.set_id]
        for i, element in enumerate(left.elements):
            print(f"   col{i} A: {element.text[:60]}")
        for i, element in enumerate(right.elements):
            print(f"   col{i} B: {element.text[:60]}")
        print()

    stats = engine.stats
    print(
        "pipeline funnel: "
        f"{stats.initial_candidates} candidates -> "
        f"{stats.after_check} after check -> "
        f"{stats.after_nn} after NN -> "
        f"{stats.matches} related"
    )


if __name__ == "__main__":
    main()
