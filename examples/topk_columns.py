"""Top-k search: the 5 most joinable columns for one reference column.

Threshold search (the paper's SEARCH mode) needs a delta up front;
interactive exploration usually wants "the k best matches" instead.
This example uses :class:`repro.core.topk.TopKSearcher`, which deepens
the threshold until k results are certain while staying exact.

Run:  python examples/topk_columns.py
"""

from repro import Relatedness, SetCollection, SilkMothConfig
from repro.core.topk import TopKSearcher
from repro.datasets.webtable import webtable_like_columns


def main() -> None:
    columns = webtable_like_columns(300, seed=29)
    collection = SetCollection.from_strings(columns)
    config = SilkMothConfig(
        metric=Relatedness.CONTAINMENT,
        delta=0.9,   # the searcher starts strict and deepens as needed
        alpha=0.5,
    )
    searcher = TopKSearcher(collection, config, shrink=0.8, min_delta=0.2)

    reference_id = max(
        range(len(columns)), key=lambda i: len(set(columns[i]))
    )
    reference = collection[reference_id]
    print(
        f"reference: column {reference_id} "
        f"({len(reference)} elements, first: {columns[reference_id][0]!r})"
    )

    outcome = searcher.search(reference, k=5, skip_set=reference_id)
    print(
        f"\nsearched {outcome.levels} threshold level(s), "
        f"deepest delta = {outcome.delta_used:.3f}, "
        f"saturated = {outcome.saturated}"
    )
    print("\ntop matches (best first):")
    for rank, result in enumerate(outcome.results, start=1):
        sample = columns[result.set_id][0]
        print(
            f"   #{rank}  column {result.set_id:<5} "
            f"containment={result.relatedness:.3f}  e.g. {sample!r}"
        )
    if not outcome.results:
        print("   (nothing related above the min_delta floor)")


if __name__ == "__main__":
    main()
