"""Sharded discovery: one dataset, N worker shards, identical answers.

The cluster shards the collection across worker engines, routes each
query only to shards whose token summaries can intersect it, and
merges the shard answers -- bit-identical to the single-node engine.
This walkthrough builds the same tiny dataset twice (single node and a
three-shard cluster), compares their discovery output, shows the
router provably skipping shards, mutates the cluster, and round-trips
it through a manifest + per-shard version-3 snapshots.

Run:  PYTHONPATH=src python examples/cluster_discovery.py
"""

import tempfile
from pathlib import Path

from repro import SetCollection, SilkMoth, SilkMothCluster, SilkMothConfig

SETS = [
    ["jazz piano trio", "blue note records"],
    ["jazz piano quartet", "blue note pressing"],
    ["gravel bike frame", "carbon fork"],
    ["gravel bike frameset", "carbon fork tapered"],
    ["sourdough starter", "rye flour"],
]

CONFIG = SilkMothConfig(delta=0.4)


def main() -> None:
    """Run the sharded-vs-single-node walkthrough."""
    single = SilkMoth(SetCollection.from_strings(SETS), CONFIG)
    expected = single.discover()

    with SilkMothCluster.from_sets(SETS, CONFIG, shards=3) as cluster:
        got = cluster.discover()
        assert got == expected, "cluster must equal the single node"
        print(f"single node found {len(expected)} related pair(s); "
              f"3-shard cluster found the same pairs:")
        for row in got:
            print(f"  sets {row.reference_id} ~ {row.set_id} "
                  f"(relatedness {row.relatedness:.2f})")

        # Routing: a bike query cannot match the jazz or bread shards.
        cluster.search(["gravel bike frame"])
        verdict = cluster.last_pass
        print(f"routing: {verdict.shards_routed} shard(s) searched, "
              f"{verdict.shards_skipped} provably empty and skipped")

        # Mutations keep the global numbering of the single-node service.
        new_id = cluster.add_set(["sourdough starter", "spelt flour"])
        cluster.remove_set(2)
        print(f"added global set {new_id}, tombstoned set 2; "
              f"live ids now {cluster.live_set_ids()}")

        with tempfile.TemporaryDirectory() as tmp:
            manifest = Path(tmp) / "cluster.json"
            cluster.save(manifest)
            shard_files = sorted(
                p.name for p in Path(tmp).glob("cluster-shard*.json")
            )
            print(f"saved manifest + shard snapshots: {shard_files}")
            reloaded = SilkMothCluster.load(manifest, CONFIG)
            try:
                hits = reloaded.search(["sourdough starter", "rye flour"])
                print(f"reloaded cluster answers: related set ids "
                      f"{[r.set_id for r in hits]}")
            finally:
                reloaded.close()

        print(f"lifetime: {cluster.stats.queries} query(ies), "
              f"shard skip rate {cluster.stats.shard_skip_rate:.0%}")


if __name__ == "__main__":
    main()
