"""Near-duplicate string detection with edit similarity.

The string matching application (Section 8.1): every title is a set of
words, every word a set of q-grams, and two titles are near-duplicates
when their maximum word-to-word matching (under edit similarity) is
high.  Unlike exact-match dedup, this survives typos and small word
edits.

Run:  python examples/string_dedup.py
"""

from repro import Relatedness, SetCollection, SilkMoth, SilkMothConfig
from repro.core.clustering import cluster_related_sets, representatives
from repro.datasets.dblp import dblp_like_titles
from repro.sim.functions import SimilarityKind


def main() -> None:
    # 200 synthetic publication titles, ~30% in near-duplicate clusters
    # (one typo-ed copy per base title).
    titles = dblp_like_titles(200, seed=7, duplicate_fraction=0.3)

    config = SilkMothConfig(
        metric=Relatedness.SIMILARITY,
        similarity=SimilarityKind.EDS,
        delta=0.7,   # overall relatedness threshold
        alpha=0.8,   # per-word edit similarity threshold (implies q = 3)
        scheme="dichotomy",
    )
    collection = SetCollection.from_strings(
        titles, kind=SimilarityKind.EDS, q=config.effective_q
    )
    engine = SilkMoth(collection, config)

    pairs = engine.discover()
    print(f"{len(titles)} titles, {len(pairs)} near-duplicate pairs found\n")

    for pair in pairs[:8]:
        left = " ".join(collection[pair.reference_id].elements[i].text
                        for i in range(len(collection[pair.reference_id])))
        right = " ".join(collection[pair.set_id].elements[i].text
                         for i in range(len(collection[pair.set_id])))
        print(f"similarity {pair.relatedness:.2f}")
        print(f"   {left}")
        print(f"   {right}\n")

    stats = engine.stats
    naive_comparisons = len(titles) * (len(titles) - 1)
    print(
        f"verified {stats.verified} candidate pairs "
        f"instead of {naive_comparisons} brute-force comparisons "
        f"({naive_comparisons / max(1, stats.verified):.0f}x fewer matchings)"
    )

    # Fold pairs into dedup groups and pick one survivor per group.
    clusters = cluster_related_sets(pairs, n_sets=len(titles))
    keep = set(representatives(clusters))
    drop = sum(len(cluster) for cluster in clusters) - len(keep)
    print(
        f"\n{len(clusters)} duplicate group(s); keeping one title per "
        f"group removes {drop} redundant title(s)"
    )


if __name__ == "__main__":
    main()
