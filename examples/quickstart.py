"""Quickstart: find related sets in a tiny address dataset.

Reproduces the paper's motivating example (Table 1): two columns whose
values never match exactly but clearly describe the same entities.  The
maximum-matching metric pairs each Location row with its closest
Address row, so the columns are recognised as related despite the
dirtiness.

Run:  python examples/quickstart.py
"""

from repro import (
    Relatedness,
    SetCollection,
    SilkMoth,
    SilkMothConfig,
    matching_score,
)
from repro.sim.functions import SimilarityFunction, SimilarityKind

LOCATION = [
    "77 Mass Ave Boston MA",
    "5th St 02115 Seattle WA",
    "77 5th St Chicago IL",
]
ADDRESS = [
    "77 Massachusetts Avenue Boston MA",
    "Fifth Street Seattle MA 02115",
    "77 Fifth Street Chicago IL",
    "One Kendall Square Cambridge MA",
]


def main() -> None:
    # One collection holds the sets we search over; Location is the
    # reference we probe with.
    collection = SetCollection.from_strings([ADDRESS])

    config = SilkMothConfig(
        metric=Relatedness.CONTAINMENT,  # "is Location contained in S?"
        delta=0.3,                       # relatedness threshold
        alpha=0.2,                       # ignore element pairs below 0.2
    )
    engine = SilkMoth(collection, config)
    reference = engine.reference_collection([LOCATION])[0]

    print("Reference (Location):")
    for row in LOCATION:
        print("   ", row)
    print("Searching 1 candidate set (Address) ...\n")

    for result in engine.search(reference):
        print(
            f"related: set {result.set_id}  "
            f"matching score = {result.score:.3f}  "
            f"containment = {result.relatedness:.3f}"
        )

    # The raw matching score is also available directly:
    phi = SimilarityFunction(SimilarityKind.JACCARD, alpha=0.2)
    address_record = collection[0]
    score = matching_score(reference, address_record, phi)
    print(f"\n|Location ~cap~ Address| = {score:.3f}")
    print("(each Location row aligned with its best Address row)")


if __name__ == "__main__":
    main()
