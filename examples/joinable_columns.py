"""Find joinable columns via approximate inclusion dependencies.

The inclusion-dependency application of the paper (Section 8.1): given
a reference column, find every column in a corpus that approximately
*contains* it -- if enough of the reference values (fuzzily) appear in
another column, the two are probably joinable.

This example builds a synthetic web-table corpus with planted
subset/superset column pairs, picks reference columns, and reports the
joinable candidates with their containment scores, along with the
pipeline funnel so you can see the filters at work.

Run:  python examples/joinable_columns.py
"""

from repro import Relatedness, SetCollection, SilkMoth, SilkMothConfig
from repro.datasets.webtable import webtable_like_columns


def main() -> None:
    # A corpus of 300 columns; ~25% participate in containment pairs.
    columns = webtable_like_columns(
        300, seed=99, values_per_column=24, containment_fraction=0.25
    )
    collection = SetCollection.from_strings(columns)

    config = SilkMothConfig(
        metric=Relatedness.CONTAINMENT,
        delta=0.7,    # at least 70% of the reference must be covered
        alpha=0.5,    # value pairs below Jaccard 0.5 do not count
        scheme="dichotomy",
    )
    engine = SilkMoth(collection, config)

    # Use the smaller columns as references: "which big columns contain me?"
    references = sorted(
        range(len(collection)), key=lambda i: len(collection[i])
    )[:40]

    print(f"corpus: {len(collection)} columns; probing {len(references)} references\n")
    found = 0
    for ref_id in references:
        reference = collection[ref_id]
        results, stats = engine.search_with_stats(reference, skip_set=ref_id)
        for result in results:
            found += 1
            print(
                f"column {ref_id:>3} ({len(reference):>2} values) "
                f"is contained in column {result.set_id:>3} "
                f"({len(collection[result.set_id]):>2} values), "
                f"containment = {result.relatedness:.2f}"
            )
    print(f"\n{found} approximate inclusion dependencies found")

    stats = engine.stats
    print(
        "pipeline funnel: "
        f"{stats.initial_candidates} index candidates -> "
        f"{stats.after_check} after check filter -> "
        f"{stats.after_nn} after NN filter -> "
        f"{stats.matches} verified related"
    )


if __name__ == "__main__":
    main()
