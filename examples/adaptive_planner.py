"""The adaptive query planner: validity gates and the full-scan fallback.

SilkMoth's signature-based candidate selection is exact only while
Lemma 1 holds.  For edit similarity, the prefix-style schemes
(``unweighted`` / ``comb_unweighted``) need the gram-length constraint
``q < alpha / (1 - alpha)``; outside it a related set can share no
signature token at all and would be silently dropped.  The planner
(:mod:`repro.planner`) detects this per configuration and routes such
passes through an exact full scan instead -- and its decision is
inspectable from Python (shown here) or from the command line::

    silkmoth explain titles.txt --sim eds --alpha 0.5 --q 2 \\
        --scheme unweighted --reference 0

Run:  python examples/adaptive_planner.py
"""

from repro import (
    Relatedness,
    SetCollection,
    SilkMoth,
    SilkMothConfig,
    SimilarityKind,
    brute_force_search,
)

#: Small string sets: 0 and 2 are near-duplicates under edit similarity.
SETS = [
    ["silkmoth", "matching", "filtering"],
    ["database", "planner"],
    ["silkmoth", "matching", "filterinq"],
    ["unrelated", "words", "entirely"],
]


def build(scheme: str, q: int) -> SilkMoth:
    """One engine over SETS with alpha=0.5 and a pinned gram length."""
    config = SilkMothConfig(
        metric=Relatedness.SIMILARITY,
        similarity=SimilarityKind.EDS,
        delta=0.5,
        alpha=0.5,       # constraint demands q < 1 -- no q >= 2 is valid
        q=q,
        scheme=scheme,
    )
    collection = SetCollection.from_strings(
        SETS, kind=SimilarityKind.EDS, q=q
    )
    return SilkMoth(collection, config)


def main() -> None:
    """Contrast a fallback plan with a signature-keeping plan."""
    # 1. A prefix-style scheme with an out-of-constraint q: the planner
    #    must fall back to the exact full scan.
    engine = build("unweighted", q=2)
    print("=== unweighted scheme, alpha=0.5, q=2 (out of constraint) ===")
    print(engine.plan_report())
    reference = engine.collection[0]
    got = engine.search(reference, skip_set=0)
    oracle = brute_force_search(
        reference, engine.collection, engine.config, skip_set=0
    )
    assert [r.set_id for r in got] == [r.set_id for r in oracle]
    print(f"\nresults match brute force: {[r.set_id for r in got]}")

    # 2. Same parameters under a bound-family scheme: signatures stay
    #    provably exact, no fallback needed.
    engine = build("dichotomy", q=2)
    print("\n=== dichotomy scheme, same parameters ===")
    print(engine.plan(reference, skip_set=0).describe())

    # 3. scheme="auto": the cost model picks a bound-family scheme from
    #    index statistics, so automatic plans never need the fallback.
    engine = build("auto", q=2)
    decision = engine.decision
    print(
        f"\nscheme='auto' resolved to {decision.scheme!r} "
        f"(signature_valid={decision.signature_valid})"
    )


if __name__ == "__main__":
    main()
