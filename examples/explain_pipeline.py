"""Trace SilkMoth's pipeline decisions for individual set pairs.

The engine's exactness rests on a chain of provable bounds: signature
validity (Lemma 1, precondition-checked by the query planner), the
check filter (Section 5.1) and the nearest-neighbour filter
(Section 5.2), then maximum matching verification.  The ``explain``
function (:mod:`repro.core.explain`, re-exported as ``repro.explain``)
replays any (reference, candidate) pair through that chain and reports
every intermediate quantity -- which is how you debug "why wasn't this
pair matched?" questions in real integrations.

The same trace is available from the command line, prefixed with the
planner's plan report::

    silkmoth explain data.txt --metric containment --delta 0.3 \\
        --alpha 0.2 --reference 0 --candidate 1

Run:  python examples/explain_pipeline.py
"""

from repro import (
    Relatedness,
    SetCollection,
    SilkMoth,
    SilkMothConfig,
    explain,
    format_explanation,
)

#: Table 1 of the paper, plus a distractor set.
SETS = [
    # 0: Location
    ["77 Mass Ave Boston MA", "5th St 02115 Seattle WA", "77 5th St Chicago IL"],
    # 1: Address (related to Location)
    [
        "77 Massachusetts Avenue Boston MA",
        "Fifth Street Seattle MA 02115",
        "77 Fifth Street Chicago IL",
        "One Kendall Square Cambridge MA",
    ],
    # 2: a column about something else entirely
    ["apples oranges pears", "bread milk eggs", "salt pepper cumin"],
]


def main() -> None:
    collection = SetCollection.from_strings(SETS)
    config = SilkMothConfig(
        metric=Relatedness.CONTAINMENT, delta=0.3, alpha=0.2
    )
    engine = SilkMoth(collection, config)
    reference = collection[0]

    for candidate_id in (1, 2):
        explanation = explain(engine, reference, candidate_id)
        print(format_explanation(explanation, engine, reference))
        print()

    print(
        "Note how candidate 2 dies at the signature stage: it shares no\n"
        "signature token with the reference, so the engine never even\n"
        "fetches it -- that is the Lemma 1 guarantee at work."
    )


if __name__ == "__main__":
    main()
